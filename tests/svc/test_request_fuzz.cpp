// Fuzz-style determinism tests for the v2 envelope parser and the socket
// transport's line reassembly: a corpus of valid, malformed, boundary, and
// adversarial request lines is fed through a real ServerLoop socket whole,
// byte-at-a-time, and in seeded random splits — every feed must produce
// responses byte-identical to the serial handle_line oracle. Torn framing
// must be invisible: the transport either delivers the exact same bytes or
// it has a bug.
//
// Also pins the serialize_v2_request fixed point the router's replay
// machinery depends on: parse -> serialize -> parse must converge (same
// content key, identical bytes), so a replayed request is the request.
#include <gtest/gtest.h>

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "svc/event_loop.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"

namespace rfmix::svc {
namespace {

std::vector<std::string> corpus() {
  std::vector<std::string> lines;
  // Valid v2 analysis requests (distinct content keys).
  lines.push_back(
      R"({"v":2,"id":1,"kind":"op","params":{"netlist":"V1 in 0 DC 1\nR1 in out 1000\nR2 out 0 1000\n.end"}})");
  lines.push_back(
      R"({"v":2,"id":"two","kind":"op","params":{"netlist":"V1 in 0 DC 2\nR1 in out 1000\nR2 out 0 2000\n.end"}})");
  lines.push_back(
      R"({"v":2,"id":3,"kind":"ac","priority":5,"params":{"netlist":"V1 in 0 DC 0 AC 1\nR1 in out 1000\nC1 out 0 1e-9\n.end","ac":{"f_start_hz":10.0,"f_stop_hz":1e6,"points":16,"log_scale":true,"probe":"out"}}})");
  // Repeat of an earlier key: exercises the cached-flag path in order.
  lines.push_back(
      R"({"v":2,"id":4,"kind":"op","params":{"netlist":"V1 in 0 DC 1\nR1 in out 1000\nR2 out 0 1000\n.end"}})");
  // Control requests, v2 and v1.
  lines.push_back(R"({"v":2,"id":5,"kind":"ping"})");
  lines.push_back(R"({"id":6,"kind":"ping"})");
  lines.push_back(R"({"v":2,"id":7,"kind":"cancel","params":{"target":1}})");
  // Malformed JSON of assorted shapes.
  lines.push_back("{nope");
  lines.push_back(R"({"v":2,"id":8,)");
  lines.push_back("[1,2,3]");
  lines.push_back("\"just a string\"");
  lines.push_back("{}");
  // Envelope violations: unknown field, unknown kind, bad version, bad
  // params, wrong types.
  lines.push_back(R"({"v":2,"id":9,"kind":"ping","bogus":1})");
  lines.push_back(R"({"v":2,"id":10,"kind":"frobnicate"})");
  lines.push_back(R"({"v":3,"id":11,"kind":"ping"})");
  lines.push_back(R"({"v":2,"id":12,"kind":"op","params":{"netlist":42}})");
  lines.push_back(R"({"v":2,"id":13,"kind":"op"})");
  lines.push_back(R"({"v":2,"id":{},"kind":"ping"})");
  lines.push_back(R"({"v":2,"id":14,"kind":"ac","params":{"netlist":"x","ac":{"f_start_hz":-1}}})");
  // Escapes and unicode in strings that land in responses.
  lines.push_back(R"({"v":2,"id":"q\"uote\\\n","kind":"ping"})");
  lines.push_back(R"({"v":2,"id":"é€","kind":"ping"})");
  // Deep nesting and a long-but-legal line.
  lines.push_back(R"({"v":2,"id":15,"kind":"op","params":{"netlist":")" +
                  std::string(2000, 'x') + R"("}})");
  return lines;
}

/// Serial oracle: every corpus line through a fresh session, in order.
std::vector<std::string> oracle_responses(const std::vector<std::string>& lines) {
  runtime::ScopedPool pool(2);
  ResultCache cache(256);
  ServerSession session(cache, pool.pool());
  std::vector<std::string> out;
  for (const auto& line : lines) out.push_back(session.handle_line(line).line);
  return out;
}

struct Client {
  int fd = -1;
  ~Client() {
    if (fd >= 0) ::close(fd);
  }
  bool connect_to(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }
  std::vector<std::string> read_lines(std::size_t n, int timeout_ms = 60000) {
    std::string buf;
    std::vector<std::string> lines;
    while (lines.size() < n) {
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, timeout_ms) <= 0) break;
      char chunk[65536];
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(got));
      std::size_t pos = 0, nl;
      while ((nl = buf.find('\n', pos)) != std::string::npos) {
        lines.push_back(buf.substr(pos, nl - pos));
        pos = nl + 1;
      }
      buf.erase(0, pos);
    }
    return lines;
  }
};

class RequestFuzzTest : public ::testing::Test {
 protected:
  void start(ServerLoop::Options opts = ServerLoop::Options{}) {
    // max_inflight=1 serializes analysis completion per connection, so
    // response order equals request order and whole-stream comparison is
    // exact.
    opts.max_inflight = 1;
    pool_ = std::make_unique<runtime::ScopedPool>(2);
    cache_ = std::make_unique<ResultCache>(256);
    session_ = std::make_unique<ServerSession>(*cache_, pool_->pool());
    loop_ = std::make_unique<ServerLoop>(*session_, opts);
    static int counter = 0;
    path_ = ::testing::TempDir() + "rfmixd-fuzz-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".sock";
    ::unlink(path_.c_str());
    std::string err;
    ASSERT_TRUE(loop_->listen_unix(path_, &err)) << err;
    thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_) loop_->request_shutdown();
    if (thread_.joinable()) thread_.join();
    loop_.reset();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  std::unique_ptr<runtime::ScopedPool> pool_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ServerSession> session_;
  std::unique_ptr<ServerLoop> loop_;
  std::thread thread_;
  std::string path_;
};

TEST_F(RequestFuzzTest, WholeLineFeedMatchesOracle) {
  const auto lines = corpus();
  const auto expected = oracle_responses(lines);
  start();
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string stream;
  for (const auto& line : lines) stream += line + "\n";
  ASSERT_TRUE(c.send_all(stream));
  const auto got = c.read_lines(lines.size());
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(got[i], expected[i]) << i;
}

TEST_F(RequestFuzzTest, ByteAtATimeFeedIsByteIdenticalToWholeLines) {
  const auto lines = corpus();
  const auto expected = oracle_responses(lines);
  start();
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string stream;
  for (const auto& line : lines) stream += line + "\n";
  for (const char ch : stream) ASSERT_TRUE(c.send_all(std::string(1, ch)));
  const auto got = c.read_lines(lines.size());
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) EXPECT_EQ(got[i], expected[i]) << i;
}

TEST_F(RequestFuzzTest, SeededRandomSplitsAreByteIdenticalToWholeLines) {
  const auto lines = corpus();
  const auto expected = oracle_responses(lines);
  std::string stream;
  for (const auto& line : lines) stream += line + "\n";

  for (const std::uint32_t seed : {1u, 7u, 1234u}) {
    start();
    std::mt19937 rng(seed);
    std::uniform_int_distribution<std::size_t> chunk(1, 23);
    Client c;
    ASSERT_TRUE(c.connect_to(path_));
    std::size_t off = 0;
    while (off < stream.size()) {
      const std::size_t n = std::min(chunk(rng), stream.size() - off);
      ASSERT_TRUE(c.send_all(stream.substr(off, n)));
      off += n;
    }
    const auto got = c.read_lines(lines.size());
    ASSERT_EQ(got.size(), expected.size()) << "seed " << seed;
    for (std::size_t i = 0; i < expected.size(); ++i)
      EXPECT_EQ(got[i], expected[i]) << "seed " << seed << " line " << i;
    TearDown();
  }
}

TEST_F(RequestFuzzTest, TwoClientsInterleavedTornFeeds) {
  // Two connections, disjoint key sets, bytes drip-fed alternately: per-
  // connection streams must still match the per-half oracles exactly.
  std::vector<std::string> half_a, half_b;
  for (int i = 0; i < 6; ++i) {
    half_a.push_back(
        R"({"v":2,"id":)" + std::to_string(i) +
        R"(,"kind":"op","params":{"netlist":"V1 in 0 DC 1\nR1 in out )" +
        std::to_string(1100 + i) + R"(\nR2 out 0 1000\n.end"}})");
    half_b.push_back(
        R"({"v":2,"id":)" + std::to_string(100 + i) +
        R"(,"kind":"op","params":{"netlist":"V1 in 0 DC 1\nR1 in out )" +
        std::to_string(2100 + i) + R"(\nR2 out 0 1000\n.end"}})");
  }
  const auto expected_a = oracle_responses(half_a);
  const auto expected_b = oracle_responses(half_b);

  start();
  Client a, b;
  ASSERT_TRUE(a.connect_to(path_));
  ASSERT_TRUE(b.connect_to(path_));
  std::string stream_a, stream_b;
  for (const auto& l : half_a) stream_a += l + "\n";
  for (const auto& l : half_b) stream_b += l + "\n";
  std::mt19937 rng(42);
  std::uniform_int_distribution<std::size_t> chunk(1, 9);
  std::size_t off_a = 0, off_b = 0;
  while (off_a < stream_a.size() || off_b < stream_b.size()) {
    if (off_a < stream_a.size()) {
      const std::size_t n = std::min(chunk(rng), stream_a.size() - off_a);
      ASSERT_TRUE(a.send_all(stream_a.substr(off_a, n)));
      off_a += n;
    }
    if (off_b < stream_b.size()) {
      const std::size_t n = std::min(chunk(rng), stream_b.size() - off_b);
      ASSERT_TRUE(b.send_all(stream_b.substr(off_b, n)));
      off_b += n;
    }
  }
  const auto got_a = a.read_lines(half_a.size());
  const auto got_b = b.read_lines(half_b.size());
  ASSERT_EQ(got_a.size(), expected_a.size());
  ASSERT_EQ(got_b.size(), expected_b.size());
  for (std::size_t i = 0; i < expected_a.size(); ++i) EXPECT_EQ(got_a[i], expected_a[i]);
  for (std::size_t i = 0; i < expected_b.size(); ++i) EXPECT_EQ(got_b[i], expected_b[i]);
}

TEST_F(RequestFuzzTest, OversizedLineAnswersStructuredErrorAndCloses) {
  ServerLoop::Options opts;
  opts.max_line_bytes = 4096;
  start(opts);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  // 8 KiB with no newline: unresynchronizable garbage.
  ASSERT_TRUE(c.send_all(std::string(8192, 'a')));
  const auto lines = c.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"code\":\"parse_error\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("exceeds size limit"), std::string::npos) << lines[0];
  // The server must hang up (EOF), not wait for more bytes.
  char byte;
  pollfd p{c.fd, POLLIN, 0};
  ASSERT_GT(::poll(&p, 1, 30000), 0);
  EXPECT_EQ(::recv(c.fd, &byte, 1, 0), 0);
}

// ---------------------------------------------------------------------------
// serialize_v2_request: the replay fixed point.
// ---------------------------------------------------------------------------

TEST(SerializeV2Request, RoundTripsToIdenticalBytesAndKey) {
  std::vector<std::string> valid;
  for (const auto& line : corpus()) {
    ParsedRequest req;
    if (ServerSession::parse_line(line, &req)) continue;  // skip invalid
    if (!is_analysis_kind(req.kind)) continue;
    try {
      (void)request_key(req.request);  // skip un-keyable netlists: those
    } catch (const std::exception&) {  // answer exec_failed, never replay
      continue;
    }
    valid.push_back(line);
  }
  ASSERT_GE(valid.size(), 3u);
  for (const auto& line : valid) {
    ParsedRequest req;
    ASSERT_FALSE(ServerSession::parse_line(line, &req));
    const std::string once = serialize_v2_request(req, "42");
    ParsedRequest again;
    ASSERT_FALSE(ServerSession::parse_line(once, &again)) << once;
    EXPECT_EQ(again.id_json, "42");
    EXPECT_EQ(again.kind, req.kind);
    EXPECT_EQ(again.priority, req.priority);
    // Same content key (replay idempotence)...
    EXPECT_EQ(request_key(again.request).hex(), request_key(req.request).hex());
    // ...and serialization is a fixed point (replay of a replay is stable).
    EXPECT_EQ(serialize_v2_request(again, "42"), once) << line;
  }
}

TEST(SerializeV2Request, PreservesTimeoutAndPriority) {
  const std::string line =
      R"({"v":2,"id":1,"kind":"op","priority":-3,"timeout_ms":1500,"params":{"netlist":"V1 a 0 DC 1\nR1 a 0 50\n.end"}})";
  ParsedRequest req;
  ASSERT_FALSE(ServerSession::parse_line(line, &req));
  const std::string out = serialize_v2_request(req, "\"t\"");
  ParsedRequest again;
  ASSERT_FALSE(ServerSession::parse_line(out, &again)) << out;
  EXPECT_EQ(again.priority, -3);
  EXPECT_DOUBLE_EQ(again.timeout_ms, 1500.0);
  EXPECT_EQ(request_key(again.request).hex(), request_key(req.request).hex());
}

}  // namespace
}  // namespace rfmix::svc

#endif  // _WIN32
