// Hash + canonical-serialization tests, including the property the cache
// contract rests on: the key is invariant under declaration order and
// float spelling, and sensitive to every physical parameter.
#include "svc/hash.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"
#include "svc/request.hpp"

namespace rfmix::svc {
namespace {

TEST(Hash128, StableAndSeedSensitive) {
  const Hash128 a = hash128("rfmix");
  EXPECT_EQ(a, hash128("rfmix"));
  EXPECT_FALSE(a == hash128("rfmiy"));
  EXPECT_FALSE(a == hash128("rfmix", 1));
  EXPECT_FALSE(hash128("") == hash128(std::string_view("\0", 1)));
}

TEST(Hash128, AllTailLengthsDistinct) {
  // Exercise every branch of the 16-byte block + tail switch.
  std::set<std::string> seen;
  std::string s;
  for (int len = 0; len <= 40; ++len) {
    seen.insert(hash128(s).hex());
    s.push_back(static_cast<char>('a' + (len % 26)));
  }
  EXPECT_EQ(seen.size(), 41u);
}

TEST(Hash128, HexRoundTrip) {
  const Hash128 h = hash128("round trip");
  const std::string hex = h.hex();
  EXPECT_EQ(hex.size(), 32u);
  Hash128 back;
  ASSERT_TRUE(parse_hash128(hex, &back));
  EXPECT_EQ(back, h);
  EXPECT_FALSE(parse_hash128("short", &back));
  EXPECT_FALSE(parse_hash128(std::string(32, 'x'), &back));
  EXPECT_FALSE(parse_hash128(hex, nullptr));
}

TEST(Canonical, EscapesStructuralCharacters) {
  CanonicalWriter w;
  w.begin_record("tag");
  w.field("k", "a|b%c\nd");
  w.end_record();
  EXPECT_EQ(w.str(), "tag|k=a%7Cb%25c%0Ad\n");
}

TEST(Canonical, DeviceRecordBytesPinnedExactly) {
  // Pin the exact record bytes so truncation (a missing end_record() once
  // dropped the final character of the last field's value, colliding e.g.
  // temp=300 with temp=301) cannot reappear silently.
  spice::Circuit ckt;
  const auto in = ckt.node("in"), out = ckt.node("out");
  ckt.add<spice::Resistor>("r1", in, out, 12.0, 300.0);
  EXPECT_EQ(canonical_device_record(ckt, 0),
            "device|kind=resistor|name=r1|nodes=in,out|r=12|temp=300");
}

TEST(Canonical, LastFieldFinalCharacterDistinguishesRecords) {
  const auto record = [](double temp) {
    spice::Circuit ckt;
    ckt.add<spice::Resistor>("r1", ckt.node("in"), spice::kGround, 12.0, temp);
    return canonical_device_record(ckt, 0);
  };
  EXPECT_NE(record(300.0), record(301.0));  // differ only in the final byte
}

// --- circuit-hash invariance ------------------------------------------------

std::string canonical_of(const spice::Circuit& ckt) {
  CanonicalWriter w;
  append_canonical_circuit(w, ckt);
  return w.str();
}

TEST(Canonical, InvariantUnderDeviceDeclarationOrder) {
  spice::Circuit a;
  {
    const auto in = a.node("in"), out = a.node("out");
    a.add<spice::Resistor>("r1", in, out, 1e3);
    a.add<spice::Capacitor>("c1", out, spice::kGround, 1e-9);
    a.add<spice::VoltageSource>("v1", in, spice::kGround, spice::Waveform::dc(1.0));
  }
  spice::Circuit b;
  {
    const auto out = b.node("out"), in = b.node("in");  // nodes reversed too
    b.add<spice::VoltageSource>("v1", in, spice::kGround, spice::Waveform::dc(1.0));
    b.add<spice::Capacitor>("c1", out, spice::kGround, 1e-9);
    b.add<spice::Resistor>("r1", in, out, 1e3);
  }
  EXPECT_EQ(canonical_of(a), canonical_of(b));
}

TEST(Canonical, SensitiveToParamsTerminalsAndNames) {
  const auto build = [](double r, bool swap_terminals, const char* rname) {
    spice::Circuit ckt;
    const auto in = ckt.node("in"), out = ckt.node("out");
    if (swap_terminals) {
      ckt.add<spice::Resistor>(rname, out, in, r);
    } else {
      ckt.add<spice::Resistor>(rname, in, out, r);
    }
    return ckt;
  };
  const std::string base = canonical_of(build(1e3, false, "r1"));
  EXPECT_NE(base, canonical_of(build(1e3 + 1e-9, false, "r1")));  // tiny param change
  EXPECT_NE(base, canonical_of(build(1e3, true, "r1")));          // terminal order
  EXPECT_NE(base, canonical_of(build(1e3, false, "r2")));         // device name
}

TEST(Canonical, RejectsDuplicateDeviceNames) {
  spice::Circuit ckt;
  const auto in = ckt.node("in");
  ckt.add<spice::Resistor>("r1", in, spice::kGround, 1e3);
  ckt.add<spice::Resistor>("r1", in, spice::kGround, 2e3);
  CanonicalWriter w;
  EXPECT_THROW(append_canonical_circuit(w, ckt), std::invalid_argument);
}

TEST(RequestKey, NetlistLineOrderInvariant) {
  Request a;
  a.kind = RequestKind::kOp;
  a.netlist = "V1 in 0 DC 1\nR1 in out 1k\nR2 out 0 1k\n";
  Request b = a;
  b.netlist = "R2 out 0 1k\nR1 in out 1k\nV1 in 0 DC 1\n";
  EXPECT_EQ(request_key(a), request_key(b));
  EXPECT_EQ(request_canonical(a), request_canonical(b));
}

TEST(RequestKey, FloatSpellingInvariant) {
  Request a;
  a.kind = RequestKind::kOp;
  a.netlist = "V1 in 0 DC 1\nR1 in 0 1k\n";
  Request b = a;
  b.netlist = "V1 in 0 DC 1.0\nR1 in 0 1000\n";  // same doubles, different text
  EXPECT_EQ(request_key(a), request_key(b));
}

TEST(RequestKey, AnalysisConfigChangesKey) {
  Request ac;
  ac.kind = RequestKind::kAc;
  ac.netlist = "V1 in 0 DC 0 AC 1\nR1 in out 1k\nC1 out 0 1n\n";
  ac.ac.probe = "out";
  const Hash128 base = request_key(ac);

  Request op = ac;
  op.kind = RequestKind::kOp;
  EXPECT_FALSE(base == request_key(op));  // analysis kind

  Request pts = ac;
  pts.ac.points = ac.ac.points + 1;
  EXPECT_FALSE(base == request_key(pts));

  Request probe = ac;
  probe.ac.probe = "in";
  EXPECT_FALSE(base == request_key(probe));

  Request lin = ac;
  lin.ac.log_scale = false;
  EXPECT_FALSE(base == request_key(lin));
}

TEST(RequestKey, EveryMixerConfigFieldPerturbsKey) {
  using core::MixerConfig;
  // One mutator per MixerConfig field; keep in sync with the struct. The
  // count assertion below trips when a field is added here but the list is
  // what guarantees "no silently uncached knob".
  const std::vector<std::function<void(MixerConfig&)>> mutators = {
      [](MixerConfig& c) { c.mode = core::MixerMode::kPassive; },
      [](MixerConfig& c) { c.temperature_k += 1; },
      [](MixerConfig& c) { c.vdd += 1e-3; },
      [](MixerConfig& c) { c.f_lo_hz += 1; },
      [](MixerConfig& c) { c.lo_amplitude += 1e-6; },
      [](MixerConfig& c) { c.lo_common_mode += 1e-6; },
      [](MixerConfig& c) { c.lo_rise_fraction += 1e-6; },
      [](MixerConfig& c) { c.lo_phase_frac += 1e-6; },
      [](MixerConfig& c) { c.rf_series_r += 1; },
      [](MixerConfig& c) { c.tca_gm += 1e-6; },
      [](MixerConfig& c) { c.tca_rout += 1; },
      [](MixerConfig& c) { c.tca_cpar += 1e-18; },
      [](MixerConfig& c) { c.tca_bias_ma += 1e-3; },
      [](MixerConfig& c) { c.tca_nf_gamma += 1e-3; },
      [](MixerConfig& c) { c.tca_flicker_corner_hz += 1; },
      [](MixerConfig& c) { c.quad_w += 1e-9; },
      [](MixerConfig& c) { c.quad_ron += 1e-3; },
      [](MixerConfig& c) { c.quad_l += 1e-12; },
      [](MixerConfig& c) { c.sw12_w += 1e-9; },
      [](MixerConfig& c) { c.rdeg += 1e-3; },
      [](MixerConfig& c) { c.rdeg_ideal_extra += 1e-3; },
      [](MixerConfig& c) { c.tg_resistance += 1; },
      [](MixerConfig& c) { c.cc_load += 1e-15; },
      [](MixerConfig& c) { c.tia_rf += 1; },
      [](MixerConfig& c) { c.tia_cf += 1e-15; },
      [](MixerConfig& c) { c.tia_ota_gm += 1e-6; },
      [](MixerConfig& c) { c.tia_ota_rout += 1; },
      [](MixerConfig& c) { c.tia_ota_gbw_hz += 1; },
      [](MixerConfig& c) { c.tia_bias_ma += 1e-3; },
      [](MixerConfig& c) { c.tia_input_noise_nv += 1e-3; },
      [](MixerConfig& c) { c.tia_flicker_corner_hz += 1; },
      [](MixerConfig& c) { c.active_pair_noise_gm += 1e-6; },
      [](MixerConfig& c) { c.active_pair_flicker_corner_hz += 1; },
      [](MixerConfig& c) { c.lo_buffer_ma += 1e-3; },
      [](MixerConfig& c) { c.bias_overhead_ma += 1e-3; },
      [](MixerConfig& c) { c.core_bias_ma += 1e-3; },
  };

  Request base;
  base.kind = RequestKind::kMixerMetric;
  base.metric.metric = core::MixerMetric::kGainDb;
  const Hash128 base_key = request_key(base);

  std::set<std::string> keys;
  keys.insert(base_key.hex());
  for (std::size_t i = 0; i < mutators.size(); ++i) {
    Request r = base;
    mutators[i](r.metric.config);
    const Hash128 k = request_key(r);
    EXPECT_FALSE(k == base_key) << "mutator " << i << " did not change the key";
    keys.insert(k.hex());
  }
  // Each perturbation also distinct from the others (fields not aliased).
  EXPECT_EQ(keys.size(), mutators.size() + 1);

  // Metric / frequency knobs perturb the key too.
  Request nf = base;
  nf.metric.metric = core::MixerMetric::kNfDsbDb;
  EXPECT_FALSE(request_key(nf) == base_key);
  Request fif = base;
  fif.metric.f_if_hz *= 2;
  EXPECT_FALSE(request_key(fif) == base_key);
  Request frf = base;
  frf.metric.f_rf_hz = 2.45e9;
  EXPECT_FALSE(request_key(frf) == base_key);
}

TEST(RequestKey, IncludesCodeVersion) {
  Request r;
  r.kind = RequestKind::kOp;
  r.netlist = "V1 in 0 DC 1\nR1 in 0 1k\n";
  const std::string canon = request_canonical(r);
  EXPECT_NE(canon.find("version|epoch="), std::string::npos) << canon;
  EXPECT_NE(canon.find("|git="), std::string::npos) << canon;
}

}  // namespace
}  // namespace rfmix::svc
