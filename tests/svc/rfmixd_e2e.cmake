# End-to-end check of the rfmixd binary: feed the NDJSON request fixture
# through stdin and assert on the response lines, including that a
# line-permuted netlist (request 4) is served from cache with the same key
# as request 3 — the canonical-hashing contract, proven over the wire.
#
# Invoked by CTest as:
#   cmake -DRFMIXD=<binary> -DREQUESTS=<fixture> -DWORK_DIR=<dir> -P rfmixd_e2e.cmake

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${RFMIXD}"
  INPUT_FILE "${REQUESTS}"
  OUTPUT_VARIABLE STDOUT
  ERROR_VARIABLE STDERR
  RESULT_VARIABLE RC
  TIMEOUT 240
  WORKING_DIRECTORY "${WORK_DIR}")

if(NOT RC EQUAL 0)
  message(FATAL_ERROR "rfmixd exited with ${RC}\nstdout:\n${STDOUT}\nstderr:\n${STDERR}")
endif()

string(REGEX REPLACE "\n$" "" TRIMMED "${STDOUT}")
string(REPLACE "\n" ";" LINES "${TRIMMED}")
list(LENGTH LINES NLINES)
if(NOT NLINES EQUAL 13)
  message(FATAL_ERROR "expected 13 response lines, got ${NLINES}:\n${STDOUT}")
endif()

macro(expect_contains idx needle)
  list(GET LINES ${idx} _line)
  string(FIND "${_line}" "${needle}" _pos)
  if(_pos EQUAL -1)
    message(FATAL_ERROR "response ${idx} missing '${needle}':\n${_line}")
  endif()
endmacro()

# 1: ping (version-less -> v1, answered but flagged deprecated)
expect_contains(0 "\"id\":1")
expect_contains(0 "\"pong\":true")
expect_contains(0 "\"deprecated\":true")

# 2: DC operating point of the 6k/4k divider -> v(mid) = 4 V (up to gmin)
expect_contains(1 "\"ok\":true")
expect_contains(1 "\"analysis\":\"op\"")
list(GET LINES 1 LINE2)
if(NOT LINE2 MATCHES "\"mid\":(4([,.}])|3\\.99999)")
  message(FATAL_ERROR "divider mid voltage not ~4 V:\n${LINE2}")
endif()

# 3: AC sweep, cold
expect_contains(2 "\"ok\":true")
expect_contains(2 "\"cached\":false")
expect_contains(2 "\"analysis\":\"ac\"")

# 4: same circuit with permuted netlist lines -> cache hit, same key
expect_contains(3 "\"cached\":true")
list(GET LINES 2 LINE3)
list(GET LINES 3 LINE4)
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY3 "${LINE3}")
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY4 "${LINE4}")
if(NOT KEY3 STREQUAL KEY4 OR KEY3 STREQUAL "")
  message(FATAL_ERROR "permuted netlist changed the key: '${KEY3}' vs '${KEY4}'")
endif()
# Bit-identical cached result: the result payload of 3 and 4 must match.
string(REGEX MATCH "\"result\":.*$" RES3 "${LINE3}")
string(REGEX MATCH "\"result\":.*$" RES4 "${LINE4}")
if(NOT RES3 STREQUAL RES4)
  message(FATAL_ERROR "cached result differs from cold run:\n${RES3}\n${RES4}")
endif()

# 5: unknown kind -> structured error
expect_contains(4 "\"ok\":false")
expect_contains(4 "unknown request kind")

# 6: stats reflect 3 analysis submissions, 1 cache hit
expect_contains(5 "\"submitted\":3")
expect_contains(5 "\"cache_hits\":1")
expect_contains(5 "\"executed\":2")

# 7: v2 ping -> versioned envelope, no deprecation marker
expect_contains(6 "\"v\":2")
expect_contains(6 "\"id\":7")
expect_contains(6 "\"pong\":true")
list(GET LINES 6 LINE7)
if(LINE7 MATCHES "deprecated")
  message(FATAL_ERROR "v2 response carries the v1 deprecation marker:\n${LINE7}")
endif()

# 8: the same AC request as 3, sent as a v2 envelope -> same key, cache hit
# (the protocol version is not part of the content hash).
expect_contains(7 "\"v\":2")
expect_contains(7 "\"cached\":true")
list(GET LINES 7 LINE8)
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY8 "${LINE8}")
if(NOT KEY8 STREQUAL KEY3 OR KEY8 STREQUAL "")
  message(FATAL_ERROR "v2 envelope changed the content key: '${KEY3}' vs '${KEY8}'")
endif()

# 9: npath_zin (v2-only op), cold -> full Zin/S11 sweep payload
expect_contains(8 "\"id\":9")
expect_contains(8 "\"ok\":true")
expect_contains(8 "\"cached\":false")
expect_contains(8 "\"analysis\":\"npath_zin\"")
expect_contains(8 "\"s11_db\"")
expect_contains(8 "\"summary\"")

# 10: identical npath_zin request -> cache hit, same key, byte-identical
# result payload.
expect_contains(9 "\"id\":10")
expect_contains(9 "\"cached\":true")
list(GET LINES 8 LINE9)
list(GET LINES 9 LINE10)
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY9 "${LINE9}")
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY10 "${LINE10}")
if(NOT KEY9 STREQUAL KEY10 OR KEY9 STREQUAL "")
  message(FATAL_ERROR "repeated npath_zin changed the key: '${KEY9}' vs '${KEY10}'")
endif()
string(REGEX MATCH "\"result\":.*$" RES9 "${LINE9}")
string(REGEX MATCH "\"result\":.*$" RES10 "${LINE10}")
if(NOT RES9 STREQUAL RES10)
  message(FATAL_ERROR "cached npath_zin result differs from cold run:\n${RES9}\n${RES10}")
endif()

# 11: gen (v2-only op): a generated mismatched rx_array piped into a DC
# op, cold. The key is derived from the GenSpec, never the rendered deck.
expect_contains(10 "\"id\":11")
expect_contains(10 "\"ok\":true")
expect_contains(10 "\"cached\":false")
expect_contains(10 "\"analysis\":\"gen\"")
expect_contains(10 "\"probes\"")

# 12: identical gen request -> cache hit, same key, byte-identical result.
expect_contains(11 "\"id\":12")
expect_contains(11 "\"cached\":true")
list(GET LINES 10 LINE11)
list(GET LINES 11 LINE12)
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY11 "${LINE11}")
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY12 "${LINE12}")
if(NOT KEY11 STREQUAL KEY12 OR KEY11 STREQUAL "")
  message(FATAL_ERROR "repeated gen changed the key: '${KEY11}' vs '${KEY12}'")
endif()
string(REGEX MATCH "\"result\":.*$" RES11 "${LINE11}")
string(REGEX MATCH "\"result\":.*$" RES12 "${LINE12}")
if(NOT RES11 STREQUAL RES12)
  message(FATAL_ERROR "cached gen result differs from cold run:\n${RES11}\n${RES12}")
endif()

# 13: same spec rendered flat -> different key (hierarchical is part of
# the canonical record; the netlist payload differs between renderings)
# but a bit-identical solved result.
expect_contains(12 "\"id\":13")
expect_contains(12 "\"cached\":false")
list(GET LINES 12 LINE13)
string(REGEX MATCH "\"key\":\"[0-9a-f]+\"" KEY13 "${LINE13}")
if(KEY13 STREQUAL KEY11 OR KEY13 STREQUAL "")
  message(FATAL_ERROR "flat rendering shares the hierarchical key: '${KEY13}'")
endif()
string(REGEX MATCH "\"result\":.*$" RES13 "${LINE13}")
if(NOT RES13 STREQUAL RES11)
  message(FATAL_ERROR "flat gen solve differs from hierarchical:\n${RES11}\n${RES13}")
endif()

message(STATUS "rfmixd e2e OK")
