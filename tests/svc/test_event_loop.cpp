// End-to-end tests for the concurrent rfmixd transport: a real ServerLoop
// listening on a real Unix socket, exercised by real client connections.
// Covers the tentpole guarantees: many clients at once, out-of-order
// completion with id matching, byte-identical responses to a serial
// session, graceful drain on shutdown, cancel, deadlines, backpressure,
// torn writes, and malformed-input liveness.
#include "svc/event_loop.hpp"

#ifndef _WIN32

#include <gtest/gtest.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "svc/json_parse.hpp"
#include "svc/server.hpp"

namespace rfmix::svc {
namespace {

/// A blocking NDJSON test client over a Unix socket.
struct Client {
  int fd = -1;

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  bool connect_to(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  void shutdown_write() { ::shutdown(fd, SHUT_WR); }

  /// Read until `n` complete lines arrived (or EOF / timeout). Returns the
  /// lines without their trailing newline.
  std::vector<std::string> read_lines(std::size_t n, int timeout_ms = 60000) {
    std::string buf;
    std::vector<std::string> lines;
    while (lines.size() < n) {
      pollfd p{fd, POLLIN, 0};
      const int rc = ::poll(&p, 1, timeout_ms);
      if (rc <= 0) break;  // timeout
      char chunk[65536];
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) break;  // EOF or error
      buf.append(chunk, static_cast<std::size_t>(got));
      std::size_t pos = 0, nl;
      while ((nl = buf.find('\n', pos)) != std::string::npos) {
        lines.push_back(buf.substr(pos, nl - pos));
        pos = nl + 1;
      }
      buf.erase(0, pos);
    }
    return lines;
  }
};

class EventLoopTest : public ::testing::Test {
 protected:
  void start(ServerLoop::Options opts = ServerLoop::Options{}, int threads = 4) {
    pool_ = std::make_unique<runtime::ScopedPool>(threads);
    cache_ = std::make_unique<ResultCache>(1024);
    session_ = std::make_unique<ServerSession>(*cache_, pool_->pool());
    loop_ = std::make_unique<ServerLoop>(*session_, opts);
    static int counter = 0;
    path_ = ::testing::TempDir() + "rfmixd-elt-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++) + ".sock";
    ::unlink(path_.c_str());
    std::string err;
    ASSERT_TRUE(loop_->listen_unix(path_, &err)) << err;
    thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_) loop_->request_shutdown();
    if (thread_.joinable()) thread_.join();
    loop_.reset();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  std::unique_ptr<runtime::ScopedPool> pool_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<ServerSession> session_;
  std::unique_ptr<ServerLoop> loop_;
  std::thread thread_;
  std::string path_;
};

/// An analysis request that keeps a pool lane busy for a while: a dense AC
/// sweep of an RC ladder. `tag` makes the content (and so the cache key)
/// unique per call site.
std::string slow_request(const std::string& id_json, int tag, double timeout_ms = 0.0,
                         int points = 1200) {
  std::string netlist = "V1 n0 0 DC 0 AC 1\\n";
  for (int i = 0; i < 14; ++i) {
    const std::string a = "n" + std::to_string(i), b = "n" + std::to_string(i + 1);
    netlist += "R" + std::to_string(i) + " " + a + " " + b + " " +
               std::to_string(1000 + tag) + "\\n";
    netlist += "C" + std::to_string(i) + " " + b + " 0 1e-9\\n";
  }
  std::string req = R"({"v":2,"id":)" + id_json + R"(,"kind":"ac")";
  if (timeout_ms > 0.0) req += ",\"timeout_ms\":" + std::to_string(timeout_ms);
  req += R"(,"params":{"netlist":")" + netlist +
         R"(","ac":{"f_start_hz":1e3,"f_stop_hz":1e9,"points":)" +
         std::to_string(points) + R"(,"probe":"n14"}}})";
  return req;
}

TEST_F(EventLoopTest, SingleClientRoundTrip) {
  start();
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all("{\"v\":2,\"id\":1,\"kind\":\"ping\"}\n"));
  const auto lines = c.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"v":2,"id":1,"ok":true,"result":{"pong":true}})");
}

TEST_F(EventLoopTest, EightClientsMixedPrioritiesMatchSerialByteForByte) {
  start();
  constexpr int kClients = 8;
  constexpr int kRequests = 6;

  // Globally unique requests (no cross-client cache interaction), mixed
  // v1/v2, mixed priorities, several kinds.
  std::vector<std::vector<std::string>> reqs(kClients);
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kRequests; ++r) {
      const std::string id = "\"c" + std::to_string(c) + "-r" + std::to_string(r) + "\"";
      std::string line;
      switch (r % 4) {
        case 0:
          line = R"({"v":2,"id":)" + id + R"(,"kind":"ping"})";
          break;
        case 1:
          line = R"({"v":2,"id":)" + id + R"(,"kind":"op","priority":)" +
                 std::to_string(c % 3) + R"(,"params":{"netlist":"V1 in 0 DC )" +
                 std::to_string(c + 1) + R"(\nR1 in mid )" +
                 std::to_string(1000 + 100 * c + r) + R"(\nR2 mid 0 4k\n"}})";
          break;
        case 2:  // a version-less v1 request rides along
          line = R"({"id":)" + id + R"(,"kind":"mixer_metric","metric":"gain_db",)" +
                 R"("config":{"f_lo_hz":)" +
                 std::to_string(1.0e9 + 1e6 * c + 1e3 * r) + "}}";
          break;
        case 3:
          line = R"({"v":2,"id":)" + id + R"(,"kind":"mixer_metric","priority":)" +
                 std::to_string(-(c % 2)) + R"(,"params":{"metric":"nf_dsb_db",)" +
                 R"("config":{"f_lo_hz":)" + std::to_string(2.0e9 + 1e6 * c + 1e3 * r) +
                 "}}}";
          break;
      }
      reqs[c].push_back(line);
    }
  }

  // Serial golden: a fresh session with its own cache answers the same
  // lines; globally-unique requests mean flags are cached=false everywhere
  // in both runs, so responses must be byte-identical.
  std::map<std::string, std::string> expected;  // id literal -> response line
  {
    ResultCache golden_cache(1024);
    ServerSession golden(golden_cache, pool_->pool());
    for (int c = 0; c < kClients; ++c)
      for (const std::string& line : reqs[c]) {
        const Response resp = golden.handle_line(line);
        const JsonValue doc = json_parse(resp.line);
        ASSERT_TRUE(doc.find("ok")->as_bool()) << resp.line;
        expected.emplace(doc.find("id")->as_string(), resp.line);
      }
  }

  std::vector<std::vector<std::string>> got(kClients);
  std::vector<std::thread> workers;
  for (int c = 0; c < kClients; ++c) {
    workers.emplace_back([&, c] {
      Client client;
      if (!client.connect_to(path_)) return;
      std::string all;
      for (const std::string& line : reqs[c]) all += line + "\n";
      if (!client.send_all(all)) return;
      got[c] = client.read_lines(kRequests);
    });
  }
  for (auto& w : workers) w.join();

  for (int c = 0; c < kClients; ++c) {
    ASSERT_EQ(got[c].size(), static_cast<std::size_t>(kRequests)) << "client " << c;
    // Responses may arrive out of order; every id answered exactly once,
    // every byte identical to the serial session.
    std::map<std::string, std::string> by_id;
    for (const std::string& line : got[c]) {
      const JsonValue doc = json_parse(line);
      ASSERT_FALSE(doc.find("id")->is_null()) << line;
      ASSERT_TRUE(by_id.emplace(doc.find("id")->as_string(), line).second)
          << "duplicate response for " << line;
    }
    for (int r = 0; r < kRequests; ++r) {
      const std::string id = "c" + std::to_string(c) + "-r" + std::to_string(r);
      ASSERT_TRUE(by_id.count(id)) << "no response for " << id;
      const auto exp = expected.find(id);
      ASSERT_NE(exp, expected.end());
      EXPECT_EQ(by_id[id], exp->second) << "client " << c << " id " << id;
    }
  }
}

TEST_F(EventLoopTest, PipelinedBurstInOneWriteAndTornWrites) {
  start();
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  // Many requests in a single write...
  std::string burst;
  for (int i = 0; i < 20; ++i)
    burst += R"({"v":2,"id":)" + std::to_string(i) + R"(,"kind":"ping"})" + "\n";
  ASSERT_TRUE(c.send_all(burst));
  auto lines = c.read_lines(20);
  ASSERT_EQ(lines.size(), 20u);

  // ...and one request torn into single-byte writes.
  const std::string req = R"({"v":2,"id":"torn","kind":"ping"})" "\n";
  for (char ch : req) {
    ASSERT_TRUE(c.send_all(std::string(1, ch)));
    if (ch == ':') std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  lines = c.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"v":2,"id":"torn","ok":true,"result":{"pong":true}})");
}

TEST_F(EventLoopTest, MalformedLinesNeverKillTheConnection) {
  start();
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all("{nope\n42\n[\n{\"v\":9,\"kind\":\"ping\"}\n"
                         "{\"v\":2,\"id\":\"alive\",\"kind\":\"ping\"}\n"));
  const auto lines = c.read_lines(5);
  ASSERT_EQ(lines.size(), 5u);
  for (int i = 0; i < 4; ++i) {
    const JsonValue doc = json_parse(lines[static_cast<std::size_t>(i)]);
    EXPECT_FALSE(doc.find("ok")->as_bool()) << lines[static_cast<std::size_t>(i)];
  }
  EXPECT_EQ(lines[4], R"({"v":2,"id":"alive","ok":true,"result":{"pong":true}})");
}

TEST_F(EventLoopTest, OversizedLineAnswersThenCloses) {
  ServerLoop::Options opts;
  opts.max_line_bytes = 4096;
  start(opts);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all(std::string(8192, 'x')));  // no newline, over the cap
  const auto lines = c.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  const JsonValue doc = json_parse(lines[0]);
  EXPECT_FALSE(doc.find("ok")->as_bool());
  EXPECT_EQ(doc.find("error")->find("code")->as_string(), "parse_error");
  // The server hangs up afterwards: EOF, not a hang.
  char b;
  EXPECT_EQ(::recv(c.fd, &b, 1, 0), 0);
}

TEST_F(EventLoopTest, BackpressureDefersButAnswersEverything) {
  ServerLoop::Options opts;
  opts.max_inflight = 2;  // force POLLIN pauses under the flood
  start(opts, /*threads=*/3);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string flood;
  constexpr int kJobs = 12;
  for (int i = 0; i < kJobs; ++i)
    flood += slow_request(std::to_string(i), /*tag=*/i, 0.0, /*points=*/60) + "\n";
  ASSERT_TRUE(c.send_all(flood));
  const auto lines = c.read_lines(kJobs);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kJobs));
  std::vector<bool> seen(kJobs, false);
  for (const std::string& line : lines) {
    const JsonValue doc = json_parse(line);
    EXPECT_TRUE(doc.find("ok")->as_bool()) << line;
    seen[static_cast<int>(doc.find("id")->as_number())] = true;
  }
  EXPECT_TRUE(std::all_of(seen.begin(), seen.end(), [](bool b) { return b; }));
}

TEST_F(EventLoopTest, CancelRemovesAQueuedRequest) {
  start(ServerLoop::Options{}, /*threads=*/2);  // one worker: jobs queue up
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  // A long job saturates the single worker; the target queues behind it;
  // the cancel arrives in the same read burst, so it is processed while
  // the target is still pending.
  std::string burst = slow_request("\"blocker\"", 1) + "\n";
  burst += slow_request("\"target\"", 2) + "\n";
  burst += R"({"v":2,"id":"cxl","kind":"cancel","params":{"target":"target"}})" "\n";
  ASSERT_TRUE(c.send_all(burst));
  const auto lines = c.read_lines(3);
  ASSERT_EQ(lines.size(), 3u);
  std::map<std::string, JsonValue> by_id;
  for (const std::string& line : lines) {
    JsonValue doc = json_parse(line);
    by_id.emplace(doc.find("id")->as_string(), std::move(doc));
  }
  ASSERT_EQ(by_id.size(), 3u);
  EXPECT_TRUE(by_id.at("blocker").find("ok")->as_bool());
  // Exactly-once semantics either way; when the cancel won the race the
  // target must carry the cancelled code.
  const bool cancelled = by_id.at("cxl").find("result")->find("cancelled")->as_bool();
  const JsonValue& target = by_id.at("target");
  if (cancelled) {
    EXPECT_FALSE(target.find("ok")->as_bool());
    EXPECT_EQ(target.find("error")->find("code")->as_string(), "cancelled");
  } else {
    EXPECT_TRUE(target.find("ok")->as_bool());
  }
}

TEST_F(EventLoopTest, DeadlineExpiryAnswersTimeout) {
  start(ServerLoop::Options{}, /*threads=*/2);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string burst = slow_request("\"blocker\"", 3) + "\n";
  burst += slow_request("\"late\"", 4, /*timeout_ms=*/1.0) + "\n";
  ASSERT_TRUE(c.send_all(burst));
  const auto lines = c.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  std::map<std::string, JsonValue> by_id;
  for (const std::string& line : lines) {
    JsonValue doc = json_parse(line);
    by_id.emplace(doc.find("id")->as_string(), std::move(doc));
  }
  EXPECT_TRUE(by_id.at("blocker").find("ok")->as_bool());
  const JsonValue& late = by_id.at("late");
  EXPECT_FALSE(late.find("ok")->as_bool());
  EXPECT_EQ(late.find("error")->find("code")->as_string(), "timeout");
}

TEST_F(EventLoopTest, ShutdownDrainsInFlightWork) {
  start(ServerLoop::Options{}, /*threads=*/3);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string burst;
  for (int i = 0; i < 4; ++i) burst += slow_request(std::to_string(i), 10 + i) + "\n";
  ASSERT_TRUE(c.send_all(burst));
  // Give the loop a beat to dispatch, then ask for shutdown mid-flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  loop_->request_shutdown();
  const auto lines = c.read_lines(4);
  thread_.join();
  // Every dispatched job completed and was flushed before run() returned.
  ASSERT_EQ(lines.size(), 4u) << "shutdown dropped in-flight responses";
  for (const std::string& line : lines) {
    const JsonValue doc = json_parse(line);
    EXPECT_TRUE(doc.find("ok")->as_bool()) << line;
  }
  // And the listener is gone: new connections fail.
  Client late;
  EXPECT_FALSE(late.connect_to(path_));
}

TEST_F(EventLoopTest, EofWithUnterminatedFinalLineStillAnswers) {
  start();
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all(R"({"v":2,"id":"last","kind":"ping"})"));  // no newline
  c.shutdown_write();
  const auto lines = c.read_lines(1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], R"({"v":2,"id":"last","ok":true,"result":{"pong":true}})");
}

TEST_F(EventLoopTest, PeerDisconnectMidResponseIsConnectionCleanupNotDeath) {
  // A client that vanishes with responses still owed must cost exactly its
  // own connection: the pending write hits EPIPE/ECONNRESET (SIGPIPE is
  // suppressed via MSG_NOSIGNAL), the conn is reaped, and unrelated
  // clients are unaffected.
  start();
  {
    Client doomed;
    ASSERT_TRUE(doomed.connect_to(path_));
    std::string burst;
    for (int i = 0; i < 4; ++i) burst += slow_request(std::to_string(i), 70 + i) + "\n";
    ASSERT_TRUE(doomed.send_all(burst));
    // Destructor closes the socket with all four responses unread and the
    // analyses still running.
  }
  // The loop keeps serving: a fresh client gets normal service while the
  // orphaned completions are written into the void and cleaned up.
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(c.send_all("{\"v\":2,\"id\":7,\"kind\":\"ping\"}\n"));
    const auto lines = c.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], R"({"v":2,"id":7,"ok":true,"result":{"pong":true}})");
  }
}

}  // namespace
}  // namespace rfmix::svc

#endif  // _WIN32
