// End-to-end tests for the fault-tolerant cluster: a real RouterLoop and
// Supervisor in this process, fork/exec'ing real rfmixd workers (the
// RFMIXD_BIN compile definition points at the built binary), exercised by
// real client connections.
//
// The acceptance guarantees pinned here:
//  * kill -9 a worker with >= 32 requests in flight: every request is
//    answered, replayed responses are byte-identical to a serial no-fault
//    session, zero client-visible errors;
//  * all workers down: cached keys still answer from the router tier,
//    uncached requests get a structured `unavailable` with retry_after_ms
//    within a bounded deadline — never a hang;
//  * injected worker faults (crash_after, torn_write, stall_ms via
//    RFMIX_FAULT in the worker environment) degrade service, never
//    correctness.
#include "svc/router.hpp"

#ifndef _WIN32

#include <gtest/gtest.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hpp"
#include "svc/fault.hpp"
#include "svc/json_parse.hpp"
#include "svc/server.hpp"
#include "svc/supervisor.hpp"

namespace rfmix::svc {
namespace {

/// A blocking NDJSON test client over a Unix socket (same shape as the
/// event-loop tests').
struct Client {
  int fd = -1;

  ~Client() {
    if (fd >= 0) ::close(fd);
  }

  bool connect_to(const std::string& path) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
    return ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }

  bool send_all(const std::string& data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  std::vector<std::string> read_lines(std::size_t n, int timeout_ms = 120000) {
    std::string buf;
    std::vector<std::string> lines;
    while (lines.size() < n) {
      pollfd p{fd, POLLIN, 0};
      const int rc = ::poll(&p, 1, timeout_ms);
      if (rc <= 0) break;
      char chunk[65536];
      const ssize_t got = ::recv(fd, chunk, sizeof chunk, 0);
      if (got <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(got));
      std::size_t pos = 0, nl;
      while ((nl = buf.find('\n', pos)) != std::string::npos) {
        lines.push_back(buf.substr(pos, nl - pos));
        pos = nl + 1;
      }
      buf.erase(0, pos);
    }
    return lines;
  }
};

class RouterTest : public ::testing::Test {
 protected:
  void start(int workers, Supervisor::Options sopts = Supervisor::Options{},
             RouterLoop::Options ropts = RouterLoop::Options{}) {
    static int counter = 0;
    const std::string base = ::testing::TempDir() + "rfmix-router-" +
                             std::to_string(::getpid()) + "-" +
                             std::to_string(counter++);
    dir_ = base + ".workers";
    path_ = base + ".sock";
    ::mkdir(dir_.c_str(), 0700);
    ::unlink(path_.c_str());

    sopts.worker_bin = RFMIXD_BIN;
    sopts.workers = workers;
    sopts.socket_dir = dir_;
    sup_ = std::make_unique<Supervisor>(sopts);
    std::string err;
    ASSERT_TRUE(sup_->start(&err)) << err;
    cache_ = std::make_unique<ResultCache>(1024);
    loop_ = std::make_unique<RouterLoop>(*sup_, *cache_, ropts);
    ASSERT_TRUE(loop_->listen_unix(path_, &err)) << err;
    thread_ = std::thread([this] { loop_->run(); });
  }

  void TearDown() override {
    if (loop_) loop_->request_shutdown();
    if (thread_.joinable()) thread_.join();
    loop_.reset();
    if (sup_) sup_->shutdown(2000.0);
    sup_.reset();
    if (!path_.empty()) ::unlink(path_.c_str());
  }

  std::unique_ptr<Supervisor> sup_;
  std::unique_ptr<ResultCache> cache_;
  std::unique_ptr<RouterLoop> loop_;
  std::thread thread_;
  std::string path_;
  std::string dir_;
};

/// An analysis request that keeps a worker busy for a while: a dense AC
/// sweep of an RC ladder, content-unique per `tag`.
std::string slow_request(const std::string& id_json, int tag, int points = 1200) {
  std::string netlist = "V1 n0 0 DC 0 AC 1\\n";
  for (int i = 0; i < 14; ++i) {
    const std::string a = "n" + std::to_string(i), b = "n" + std::to_string(i + 1);
    netlist += "R" + std::to_string(i) + " " + a + " " + b + " " +
               std::to_string(1000 + tag) + "\\n";
    netlist += "C" + std::to_string(i) + " " + b + " 0 1e-9\\n";
  }
  return R"({"v":2,"id":)" + id_json + R"(,"kind":"ac","params":{"netlist":")" +
         netlist + R"(","ac":{"f_start_hz":1e3,"f_stop_hz":1e9,"points":)" +
         std::to_string(points) + R"(,"probe":"n14"}}})";
}

std::string quick_request(const std::string& id_json, int tag) {
  return R"({"v":2,"id":)" + id_json +
         R"(,"kind":"op","params":{"netlist":"V1 in 0 DC 1\nR1 in out )" +
         std::to_string(1000 + tag) + R"(\nR2 out 0 1000\n.end"}})";
}

TEST_F(RouterTest, ControlRequestsAndV1Compat) {
  start(2);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all("{\"v\":2,\"id\":1,\"kind\":\"ping\"}\n"
                         "{\"id\":2,\"kind\":\"ping\"}\n"
                         "{\"v\":2,\"id\":3,\"kind\":\"stats\"}\n"
                         "{nope\n"));
  const auto lines = c.read_lines(4);
  ASSERT_EQ(lines.size(), 4u);
  EXPECT_EQ(lines[0], R"({"v":2,"id":1,"ok":true,"result":{"pong":true}})");
  EXPECT_EQ(lines[1], R"({"id":2,"ok":true,"deprecated":true,"result":{"pong":true}})");
  EXPECT_NE(lines[2].find("\"router\":{\"workers\":2,\"alive\":2"), std::string::npos);
  EXPECT_NE(lines[3].find("\"code\":\"parse_error\""), std::string::npos);
}

TEST_F(RouterTest, RoutedAnalysisMatchesDirectSessionByteForByte) {
  start(2);
  // Serial no-fault oracle: the same requests through an in-process
  // session.
  runtime::ScopedPool pool(4);
  ResultCache oracle_cache(1024);
  ServerSession oracle(oracle_cache, pool.pool());

  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string batch;
  std::vector<std::string> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back(quick_request(std::to_string(i), i));
    batch += reqs.back() + "\n";
  }
  ASSERT_TRUE(c.send_all(batch));
  const auto lines = c.read_lines(8);
  ASSERT_EQ(lines.size(), 8u);
  std::map<std::string, std::string> by_id;
  for (const auto& line : lines) {
    const JsonValue v = json_parse(line);
    by_id[std::to_string(static_cast<int>(v.find("id")->as_number()))] = line;
  }
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(by_id[std::to_string(i)], oracle.handle_line(reqs[i]).line) << i;
}

TEST_F(RouterTest, RepeatedKeyAnswersFromRouterCacheTier) {
  start(2);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all(quick_request("1", 7) + "\n"));
  auto first = c.read_lines(1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NE(first[0].find("\"cached\":false"), std::string::npos);
  ASSERT_TRUE(c.send_all(quick_request("2", 7) + "\n"));
  auto second = c.read_lines(1);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].find("\"cached\":true"), std::string::npos);
  // Same key and payload bytes, different provenance flag.
  const auto tail_of = [](const std::string& line) {
    return line.substr(line.find("\"key\":"));
  };
  EXPECT_EQ(tail_of(first[0]), tail_of(second[0]));
  EXPECT_GE(loop_->stats().cache_hits, 1u);
}

// The tentpole acceptance test: kill -9 a worker while >= 32 requests are
// in flight. Every request must be answered, with payloads byte-identical
// to a serial no-fault session, and zero client-visible errors.
TEST_F(RouterTest, KillWorkerMidFlightAnswersEverythingByteIdentical) {
  start(2);
  runtime::ScopedPool pool(4);
  ResultCache oracle_cache(1024);
  ServerSession oracle(oracle_cache, pool.pool());

  constexpr int kN = 36;
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string batch;
  std::vector<std::string> reqs;
  for (int i = 0; i < kN; ++i) {
    reqs.push_back(slow_request(std::to_string(i), i));
    batch += reqs.back() + "\n";
  }
  ASSERT_TRUE(c.send_all(batch));

  // Give the router a beat to dispatch, then SIGKILL one worker while its
  // share of the batch is genuinely in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  const pid_t victim = sup_->workers()[0].pid;
  ASSERT_GT(victim, 0);
  ASSERT_EQ(::kill(victim, SIGKILL), 0);

  const auto lines = c.read_lines(kN);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kN));
  std::map<std::string, std::string> by_id;
  for (const auto& line : lines) {
    const JsonValue v = json_parse(line);
    ASSERT_TRUE(v.find("ok")->as_bool()) << line;
    by_id[std::to_string(static_cast<int>(v.find("id")->as_number()))] = line;
  }
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(by_id[std::to_string(i)], oracle.handle_line(reqs[i]).line) << i;
  }
}

TEST_F(RouterTest, AllWorkersDownDegradesCachedHitsAndStructuredUnavailable) {
  Supervisor::Options sopts;
  sopts.restart = false;  // deaths are permanent: a stable "all down" state
  start(2, sopts);

  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  // Populate the router's cache tier with one key.
  ASSERT_TRUE(c.send_all(quick_request("1", 1) + "\n"));
  const auto warm = c.read_lines(1);
  ASSERT_EQ(warm.size(), 1u);
  ASSERT_NE(warm[0].find("\"ok\":true"), std::string::npos);

  for (const Supervisor::Worker& w : sup_->workers()) ::kill(w.pid, SIGKILL);

  // The cached key answers from the router tier even with zero workers.
  // (Retry until the router has noticed both deaths: a request dispatched
  // into the closing window is itself replayed-then-degraded, so every
  // response is still well-formed — cached or unavailable.)
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  bool saw_cached_answer = false;
  int seq = 100;
  while (std::chrono::steady_clock::now() < deadline && !saw_cached_answer) {
    ASSERT_TRUE(c.send_all(quick_request(std::to_string(seq++), 1) + "\n"));
    const auto lines = c.read_lines(1, 10000);
    ASSERT_EQ(lines.size(), 1u);
    if (lines[0].find("\"cached\":true") != std::string::npos) saw_cached_answer = true;
  }
  EXPECT_TRUE(saw_cached_answer);

  // An uncached key gets a structured unavailable with retry_after_ms,
  // quickly — bounded degradation, not a hang.
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(c.send_all(quick_request("500", 999) + "\n"));
  const auto lines = c.read_lines(1, 15000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\":false"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"code\":\"unavailable\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"retry_after_ms\":"), std::string::npos) << lines[0];
  EXPECT_LT(elapsed, 10000);
}

TEST_F(RouterTest, CrashAfterFaultIsSurvivedByReplayAndRestart) {
  Supervisor::Options sopts;
  // Each worker _exit(66)s right after queueing its 4th response; the
  // respawned process inherits the fault and crashes again. Keep every
  // death a "slow" failure so the breaker stays closed for this test.
  sopts.worker_env = {"RFMIX_FAULT=crash_after:4"};
  sopts.fast_failure_ms = 0.0;
  sopts.backoff_initial_ms = 25.0;
  // The whole fleet crash-loops under the batch, so a ticket at the back
  // of a worker's queue legitimately survives many deaths before it runs;
  // the replay cap must not fail it (the cap guards against poison
  // requests, which these are not).
  RouterLoop::Options ropts;
  ropts.max_replays = 64;
  start(2, sopts, ropts);

  constexpr int kN = 24;
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  std::string batch;
  for (int i = 0; i < kN; ++i) batch += quick_request(std::to_string(i), i) + "\n";
  ASSERT_TRUE(c.send_all(batch));
  const auto lines = c.read_lines(kN);
  ASSERT_EQ(lines.size(), static_cast<std::size_t>(kN));
  for (const auto& line : lines) {
    const JsonValue v = json_parse(line);
    EXPECT_TRUE(v.find("ok")->as_bool()) << line;
  }
  // The fleet crashed repeatedly underneath the batch, with the fault's
  // distinctive exit code.
  std::uint64_t spawns = 0;
  bool saw_fault_exit = false;
  for (const Supervisor::Worker& w : sup_->workers()) {
    spawns += w.spawn_count;
    if (WIFEXITED(w.last_exit_status) &&
        WEXITSTATUS(w.last_exit_status) == fault::kCrashExitCode)
      saw_fault_exit = true;
  }
  EXPECT_GT(spawns, 2u);
  EXPECT_TRUE(saw_fault_exit);
}

TEST_F(RouterTest, TornWriteWorkerStillDeliversByteCorrectResponses) {
  Supervisor::Options sopts;
  sopts.worker_env = {"RFMIX_FAULT=torn_write"};
  start(2, sopts);
  runtime::ScopedPool pool(4);
  ResultCache oracle_cache(1024);
  ServerSession oracle(oracle_cache, pool.pool());

  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  for (int i = 0; i < 3; ++i) {
    const std::string req = quick_request(std::to_string(i), i);
    ASSERT_TRUE(c.send_all(req + "\n"));
    const auto lines = c.read_lines(1);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_EQ(lines[0], oracle.handle_line(req).line);
  }
}

TEST_F(RouterTest, HungWorkersAreKilledByHeartbeatAndRequestsDegrade) {
  Supervisor::Options sopts;
  // Workers accept and execute but every response write stalls 30s: alive
  // processes, dead service. Only the heartbeat can tell.
  sopts.worker_env = {"RFMIX_FAULT=stall_ms:30000"};
  sopts.backoff_initial_ms = 25.0;
  sopts.fast_failure_ms = 0.0;
  RouterLoop::Options ropts;
  ropts.heartbeat_interval_ms = 100.0;
  ropts.heartbeat_timeout_ms = 400.0;
  ropts.max_replays = 2;
  start(2, sopts, ropts);

  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  const auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(c.send_all(quick_request("1", 1) + "\n"));
  const auto lines = c.read_lines(1, 60000);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  ASSERT_EQ(lines.size(), 1u);
  // The request cannot succeed (every worker is hung); what the client
  // must see is a bounded structured failure, not an infinite wait.
  EXPECT_NE(lines[0].find("\"code\":\"unavailable\""), std::string::npos) << lines[0];
  EXPECT_LT(elapsed, 30000);
  EXPECT_GE(loop_->stats().heartbeat_failures, 1u);
}

TEST_F(RouterTest, CancelRemovesInflightTicket) {
  // Stall the worker's response write so the job is guaranteed to still be
  // in flight when the cancel lands — without the stall, a fast machine can
  // finish the sweep inside the 30ms window and the cancel hits nothing.
  Supervisor::Options sopts;
  sopts.worker_env = {"RFMIX_FAULT=stall_ms:30000"};
  start(1, sopts);
  Client c;
  ASSERT_TRUE(c.connect_to(path_));
  ASSERT_TRUE(c.send_all(slow_request("\"job\"", 1, 4000) + "\n"));
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(c.send_all(
      R"({"v":2,"id":9,"kind":"cancel","params":{"target":"job"}})" "\n"));
  const auto lines = c.read_lines(2);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"code\":\"cancelled\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"cancelled\":true"), std::string::npos) << lines[1];
}

TEST(SupervisorTest, CrashLoopOpensBreakerThenHalfOpenProbes) {
  Supervisor::Options opts;
  opts.worker_bin = "/bin/false";  // exits immediately: the crash-loop worker
  opts.workers = 1;
  opts.socket_dir = ::testing::TempDir();
  opts.backoff_initial_ms = 1.0;
  opts.backoff_cap_ms = 8.0;
  opts.fast_failure_ms = 60000.0;  // every death counts as fast
  opts.breaker_threshold = 3;
  opts.breaker_cooloff_ms = 200.0;
  Supervisor sup(opts);
  std::string err;
  ASSERT_TRUE(sup.start(&err)) << err;

  // Drive the supervisor the way the router loop does until the breaker
  // opens.
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sup.worker(0).state != Supervisor::WorkerState::kBroken &&
         std::chrono::steady_clock::now() < deadline) {
    sup.poll_children();
    sup.spawn_due();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(sup.worker(0).state, Supervisor::WorkerState::kBroken);
  const std::uint64_t spawns_at_open = sup.worker(0).spawn_count;
  EXPECT_GE(spawns_at_open, 3u);

  // After the cooloff the breaker half-opens: exactly one probe respawn.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const auto respawned = sup.spawn_due();
  ASSERT_EQ(respawned.size(), 1u);
  EXPECT_EQ(sup.worker(0).spawn_count, spawns_at_open + 1);

  // The probe dies too (it's /bin/false): the breaker re-opens.
  const auto deadline2 = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (sup.worker(0).state != Supervisor::WorkerState::kBroken &&
         std::chrono::steady_clock::now() < deadline2) {
    sup.poll_children();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(sup.worker(0).state, Supervisor::WorkerState::kBroken);
  sup.shutdown(100.0);
}

TEST(SupervisorTest, ShutdownStopsWorkersPermanently) {
  Supervisor::Options opts;
  opts.worker_bin = RFMIXD_BIN;
  opts.workers = 2;
  static int counter = 0;
  opts.socket_dir = ::testing::TempDir() + "sup-shutdown-" +
                    std::to_string(::getpid()) + "-" + std::to_string(counter++);
  ::mkdir(opts.socket_dir.c_str(), 0700);
  Supervisor sup(opts);
  std::string err;
  ASSERT_TRUE(sup.start(&err)) << err;
  EXPECT_EQ(sup.alive_count(), 2);
  sup.shutdown(2000.0);
  EXPECT_EQ(sup.alive_count(), 0);
  for (const Supervisor::Worker& w : sup.workers())
    EXPECT_EQ(w.state, Supervisor::WorkerState::kStopped);
  EXPECT_TRUE(sup.spawn_due().empty());
}

}  // namespace
}  // namespace rfmix::svc

#endif  // _WIN32
