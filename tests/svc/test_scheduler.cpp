// JobScheduler tests: single-flight deduplication, priority draining,
// failure propagation, and the cache bit-exactness property at 1 and 8
// threads.
#include "svc/scheduler.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/metrics.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"
#include "svc/request.hpp"

namespace rfmix::svc {
namespace {

JobScheduler::Job job_of(const std::string& tag, std::function<std::string()> fn,
                         int priority = 0) {
  return JobScheduler::Job{hash128(tag), std::move(fn), priority};
}

TEST(JobScheduler, RunExecutesAndCaches) {
  runtime::ScopedPool pool(2);
  ResultCache cache(16);
  JobScheduler sched(cache, pool.pool());
  std::atomic<int> runs{0};
  const auto job = job_of("k1", [&] {
    ++runs;
    return std::string("result");
  });
  EXPECT_EQ(sched.run(job), "result");
  EXPECT_EQ(sched.run(job), "result");  // cache hit, no second execution
  EXPECT_EQ(runs.load(), 1);
  const auto s = sched.stats();
  EXPECT_EQ(s.submitted, 2u);
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.deduped, 0u);
}

TEST(JobScheduler, SingleFlightDedupesConcurrentIdenticalJobs) {
#if RFMIX_OBS_ENABLED
  const std::uint64_t exec0 = obs::counter_value("svc.jobs.executed");
  const std::uint64_t sub0 = obs::counter_value("svc.jobs.submitted");
  const std::uint64_t dedup0 = obs::counter_value("svc.jobs.deduped");
#endif
  runtime::ScopedPool pool(8);
  ResultCache cache(16);
  JobScheduler sched(cache, pool.pool());

  constexpr int kClients = 16;
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  std::atomic<int> executions{0};

  // The compute blocks until every client has submitted, so all kClients
  // submissions overlap one in-flight execution.
  const auto job = job_of("shared", [&] {
    ++executions;
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [&] { return release; });
    return std::string("shared-result");
  });

  std::vector<JobScheduler::Outcome> outcomes(kClients);
  std::vector<std::thread> clients;
  std::atomic<int> submitted{0};
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      outcomes[i] = sched.submit(job);
      ++submitted;
    });
  }
  while (submitted.load() < kClients) std::this_thread::yield();
  {
    std::lock_guard<std::mutex> lk(mu);
    release = true;
  }
  cv.notify_all();
  for (auto& t : clients) t.join();

  for (const auto& o : outcomes) EXPECT_EQ(sched.await(o), "shared-result");
  EXPECT_EQ(executions.load(), 1);

  const auto s = sched.stats();
  EXPECT_EQ(s.submitted, static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(s.executed, 1u);
  EXPECT_EQ(s.deduped + s.cache_hits, static_cast<std::uint64_t>(kClients - 1));
  EXPECT_GE(s.deduped, 1u);  // the blocked execution guarantees real joins
#if RFMIX_OBS_ENABLED
  EXPECT_EQ(obs::counter_value("svc.jobs.executed") - exec0, 1u);
  EXPECT_EQ(obs::counter_value("svc.jobs.submitted") - sub0,
            static_cast<std::uint64_t>(kClients));
  EXPECT_EQ(obs::counter_value("svc.jobs.deduped") - dedup0, s.deduped);
#endif
}

TEST(JobScheduler, BatchDrainsByPriorityOnSerialPool) {
  runtime::ScopedPool pool(1);
  ResultCache cache(16);
  JobScheduler sched(cache, pool.pool());
  std::vector<std::string> order;  // serial pool: no data race
  std::vector<JobScheduler::Job> jobs;
  const auto make = [&](const std::string& tag, int priority) {
    jobs.push_back(job_of(tag, [&order, tag] {
      order.push_back(tag);
      return tag;
    }, priority));
  };
  make("low1", 0);
  make("high", 10);
  make("low2", 0);
  make("mid", 5);
  const auto results = sched.run_batch(jobs);
  ASSERT_EQ(results.size(), 4u);
  // Results come back in input order...
  EXPECT_EQ(results[0], "low1");
  EXPECT_EQ(results[1], "high");
  EXPECT_EQ(results[2], "low2");
  EXPECT_EQ(results[3], "mid");
  // ...but execution drained highest priority first, FIFO within a level.
  const std::vector<std::string> expected = {"high", "mid", "low1", "low2"};
  EXPECT_EQ(order, expected);
}

TEST(JobScheduler, FailurePropagatesAndIsNotCached) {
  runtime::ScopedPool pool(2);
  ResultCache cache(16);
  JobScheduler sched(cache, pool.pool());
  std::atomic<int> attempts{0};
  const auto job = job_of("flaky", [&]() -> std::string {
    if (++attempts == 1) throw std::runtime_error("transient failure");
    return "recovered";
  });
  EXPECT_THROW(sched.run(job), std::runtime_error);
  EXPECT_EQ(sched.run(job), "recovered");  // failure was not cached
  const auto s = sched.stats();
  EXPECT_EQ(s.executed, 2u);
  EXPECT_EQ(s.failed, 1u);
  EXPECT_EQ(cache.stats().stores, 1u);
}

TEST(JobScheduler, AwaitFromWorkerThreadDoesNotDeadlock) {
  // A job that itself submits and awaits a second job must not deadlock
  // even when the pool has a single worker: await() lends the blocked
  // thread to the pool via help_one().
  runtime::ScopedPool pool(2);  // 1 worker + caller
  ResultCache cache(16);
  JobScheduler sched(cache, pool.pool());
  const auto inner = job_of("inner", [] { return std::string("deep"); });
  const auto outer = job_of("outer", [&] { return "outer+" + sched.run(inner); });
  EXPECT_EQ(sched.run(outer), "outer+deep");
}

// --- the acceptance property: cached results are bit-identical ------------

void expect_bit_identical_cold_warm(int threads) {
  runtime::ScopedPool pool(threads);
  ResultCache cache(64);
  JobScheduler sched(cache, pool.pool());

  Request req;
  req.kind = RequestKind::kMixerMetric;
  req.metric.metric = core::MixerMetric::kGainDb;
  req.metric.f_rf_hz = 2.45e9;
  const Hash128 key = request_key(req);
  const auto job = JobScheduler::Job{key, [req] { return execute_request(req); }, 0};

  const std::string cold = sched.run(job);
  const std::string warm = sched.run(job);
  const std::string direct = execute_request(req);
  EXPECT_EQ(cold, warm) << "threads=" << threads;
  EXPECT_EQ(cold, direct) << "threads=" << threads;
  EXPECT_EQ(sched.stats().executed, 1u);
  EXPECT_EQ(sched.stats().cache_hits, 1u);
}

TEST(JobScheduler, CachedResultsBitIdenticalSerial) { expect_bit_identical_cold_warm(1); }

TEST(JobScheduler, CachedResultsBitIdenticalEightThreads) {
  expect_bit_identical_cold_warm(8);
}

}  // namespace
}  // namespace rfmix::svc
