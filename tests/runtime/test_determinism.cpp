// The determinism contract: every parallel analysis is bit-identical to its
// serial form, for any thread count and across repeated runs. These tests
// compare raw doubles with EXPECT_EQ on purpose — "close enough" would hide
// exactly the schedule-dependent drift the runtime is designed to exclude.
#include <gtest/gtest.h>

#include <complex>
#include <vector>

#include "mathx/rng.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dcsweep.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/montecarlo.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

// ---------------------------------------------------------------- Rng::fork

TEST(RngFork, IndependentOfParentState) {
  mathx::Rng fresh(42);
  mathx::Rng advanced(42);
  for (int i = 0; i < 100; ++i) (void)advanced.next_u64();
  // fork derives from the original seed, not the evolved state.
  for (std::uint64_t i = 0; i < 8; ++i) {
    mathx::Rng a = fresh.fork(i);
    mathx::Rng b = advanced.fork(i);
    for (int k = 0; k < 16; ++k) EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngFork, StreamsAreDistinct) {
  const mathx::Rng base(7);
  EXPECT_NE(base.fork(0).next_u64(), base.fork(1).next_u64());
  EXPECT_NE(base.fork(1).next_u64(), base.fork(2).next_u64());
  // fork(0) must not collapse onto the parent stream.
  mathx::Rng parent(7);
  EXPECT_NE(base.fork(0).next_u64(), parent.next_u64());
}

// ------------------------------------------------------ Monte-Carlo trials

// A representative mismatch trial: draw a mismatched device and reduce it to
// one number whose bits depend on the exact draw sequence.
double mismatch_trial(mathx::Rng& rng) {
  const MosParams p = tech65::with_mismatch(tech65::nmos(20e-6), rng);
  return p.vto + 1e3 * p.kp + rng.normal();
}

TEST(Determinism, MonteCarloTrialsMatchSerialLoop) {
  constexpr int kTrials = 64;
  constexpr std::uint64_t kSeed = 1234;

  // The ground truth: a plain serial loop over counter-forked streams.
  std::vector<double> serial;
  const mathx::Rng base(kSeed);
  for (int i = 0; i < kTrials; ++i) {
    mathx::Rng rng = base.fork(static_cast<std::uint64_t>(i));
    serial.push_back(mismatch_trial(rng));
  }

  for (const int threads : kThreadCounts) {
    runtime::ScopedPool scoped(threads);
    for (int rep = 0; rep < 3; ++rep) {
      const std::vector<double> got = tech65::monte_carlo_trials(
          kTrials, kSeed, [](int, mathx::Rng& rng) { return mismatch_trial(rng); });
      ASSERT_EQ(got.size(), serial.size());
      for (int i = 0; i < kTrials; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], serial[static_cast<std::size_t>(i)])
            << "trial " << i << " threads " << threads << " rep " << rep;
    }
  }
}

// ------------------------------------------------------------------ DC sweep

// MOS transfer curve: a nonlinear circuit whose Newton iteration count (and
// thus float rounding) would differ between warm and cold starts if the
// chunking were schedule-dependent.
DcSweepInstance make_mos_transfer() {
  auto ckt = std::make_shared<Circuit>();
  const NodeId vdd = ckt->node("vdd");
  const NodeId g = ckt->node("g");
  const NodeId d = ckt->node("d");
  ckt->add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  auto& vg = ckt->add<VoltageSource>("vg", g, kGround, Waveform::dc(0.0));
  ckt->add<Resistor>("rl", vdd, d, 1e3);
  ckt->add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  return DcSweepInstance{ckt, &vg};
}

TEST(Determinism, DcSweepParallelMatchesSerial) {
  constexpr int kPoints = 41;  // 6 chunks, last one ragged

  DcSweepInstance serial_inst = make_mos_transfer();
  const DcSweepResult serial =
      dc_sweep(*serial_inst.circuit, *serial_inst.source, 0.0, 1.2, kPoints);
  const NodeId d_serial = serial_inst.circuit->node("d");
  const std::vector<double> want = serial.v(d_serial);

  for (const int threads : kThreadCounts) {
    runtime::ScopedPool scoped(threads);
    const DcSweepResult par = dc_sweep(make_mos_transfer, 0.0, 1.2, kPoints);
    ASSERT_EQ(par.size(), serial.size());
    for (std::size_t i = 0; i < par.size(); ++i)
      EXPECT_EQ(par.values[i], serial.values[i]);
    // Node ids are assigned in creation order, so "d" matches across builds.
    DcSweepInstance probe = make_mos_transfer();
    const NodeId d_par = probe.circuit->node("d");
    const std::vector<double> got = par.v(d_par);
    for (std::size_t i = 0; i < got.size(); ++i)
      EXPECT_EQ(got[i], want[i]) << "point " << i << " threads " << threads;
  }
}

// ------------------------------------------------------------------ AC sweep

TEST(Determinism, AcSweepBitIdenticalAcrossThreadCounts) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  const NodeId out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Resistor>("r1", in, mid, 1e3);
  ckt.add<Capacitor>("c1", mid, kGround, 1e-9);
  ckt.add<Resistor>("r2", mid, out, 10e3);
  ckt.add<Capacitor>("c2", out, kGround, 100e-12);
  const Solution op = dc_operating_point(ckt);
  const std::vector<double> freqs = log_space(1e3, 1e9, 121);

  std::vector<std::complex<double>> want;
  {
    runtime::ScopedPool scoped(1);
    const AcResult res = ac_sweep(ckt, op, freqs);
    for (std::size_t i = 0; i < freqs.size(); ++i) want.push_back(res.v(i, out));
  }

  for (const int threads : kThreadCounts) {
    runtime::ScopedPool scoped(threads);
    for (int rep = 0; rep < 2; ++rep) {
      const AcResult res = ac_sweep(ckt, op, freqs);
      ASSERT_EQ(res.solutions.size(), freqs.size());
      for (std::size_t i = 0; i < freqs.size(); ++i) {
        const std::complex<double> got = res.v(i, out);
        EXPECT_EQ(got.real(), want[i].real()) << "f " << freqs[i] << " threads " << threads;
        EXPECT_EQ(got.imag(), want[i].imag()) << "f " << freqs[i] << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace rfmix::spice
