// Thread-pool and parallel_for machinery tests: scheduling edge cases the
// analyses rely on — exception propagation, empty ranges, nesting,
// oversubscription, serial fallback — exercised directly on the runtime
// primitives rather than through a circuit.
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

namespace rfmix::runtime {
namespace {

TEST(ThreadPool, SpawnsOneFewerWorkerThanRequested) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.worker_count(), 3);
  EXPECT_EQ(pool.concurrency(), 4);
}

TEST(ThreadPool, SingleThreadRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.worker_count(), 0);
  // With no workers, submit must execute the job before returning.
  bool ran = false;
  pool.submit([&] { ran = true; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPool, ClampsNonPositiveThreadCounts) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.worker_count(), 0);
  ThreadPool neg(-3);
  EXPECT_EQ(neg.worker_count(), 0);
}

TEST(ThreadPool, ScopedPoolOverridesCurrent) {
  ThreadPool& before = ThreadPool::current();
  {
    ScopedPool scoped(3);
    EXPECT_EQ(&ThreadPool::current(), &scoped.pool());
    {
      ScopedPool inner(1);
      EXPECT_EQ(&ThreadPool::current(), &inner.pool());
    }
    EXPECT_EQ(&ThreadPool::current(), &scoped.pool());
  }
  EXPECT_EQ(&ThreadPool::current(), &before);
}

TEST(ParallelFor, EmptyRangeIsANoOp) {
  ScopedPool scoped(4);
  std::atomic<int> calls{0};
  parallel_for(0, 0, [&](std::size_t) { ++calls; });
  parallel_for(7, 7, [&](std::size_t) { ++calls; });
  parallel_for(9, 3, [&](std::size_t) { ++calls; });  // inverted: empty
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ScopedPool scoped(8);
  constexpr std::size_t kN = 1000;
  std::vector<std::atomic<int>> hits(kN);
  parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; });
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, RespectsGrainWithoutChangingCoverage) {
  ScopedPool scoped(4);
  constexpr std::size_t kN = 103;  // deliberately not a multiple of the grain
  std::vector<std::atomic<int>> hits(kN);
  ParallelOptions opts;
  opts.grain = 16;
  parallel_for(0, kN, [&](std::size_t i) { ++hits[i]; }, opts);
  for (std::size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ParallelFor, PropagatesFirstException) {
  ScopedPool scoped(4);
  std::atomic<int> started{0};
  try {
    parallel_for(0, 64, [&](std::size_t i) {
      ++started;
      if (i == 5) throw std::runtime_error("boom");
    });
    FAIL() << "expected parallel_for to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
  // The loop drained before rethrowing: no task is still running, and at
  // least the throwing index executed.
  EXPECT_GE(started.load(), 1);
}

TEST(ParallelFor, ExceptionInSerialFallbackPropagates) {
  ScopedPool scoped(1);
  EXPECT_THROW(
      parallel_for(0, 4, [](std::size_t i) {
        if (i == 2) throw std::invalid_argument("serial");
      }),
      std::invalid_argument);
}

TEST(ParallelFor, NestedParallelForCompletes) {
  ScopedPool scoped(4);
  constexpr std::size_t kOuter = 8, kInner = 32;
  std::vector<std::vector<int>> grid(kOuter, std::vector<int>(kInner, 0));
  parallel_for(0, kOuter, [&](std::size_t o) {
    parallel_for(0, kInner, [&](std::size_t i) { grid[o][i] = static_cast<int>(o * kInner + i); });
  });
  for (std::size_t o = 0; o < kOuter; ++o)
    for (std::size_t i = 0; i < kInner; ++i)
      EXPECT_EQ(grid[o][i], static_cast<int>(o * kInner + i));
}

TEST(ParallelFor, OversubscriptionManySmallLoops) {
  // Far more tasks than lanes, repeatedly, to shake out lost-wakeup and
  // double-claim bugs in the steal path.
  ScopedPool scoped(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<long> sum{0};
    parallel_for(0, 256, [&](std::size_t i) { sum += static_cast<long>(i); });
    EXPECT_EQ(sum.load(), 256L * 255L / 2L);
  }
}

TEST(ParallelFor, ExplicitPoolOptionWins) {
  ScopedPool ambient(8);
  ThreadPool private_pool(2);
  ParallelOptions opts;
  opts.pool = &private_pool;
  std::atomic<int> calls{0};
  parallel_for(0, 10, [&](std::size_t) { ++calls; }, opts);
  EXPECT_EQ(calls.load(), 10);
}

TEST(ParallelMap, PreservesIndexOrder) {
  ScopedPool scoped(8);
  const auto out = parallel_map(500, [](std::size_t i) { return 3.0 * static_cast<double>(i); });
  ASSERT_EQ(out.size(), 500u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], 3.0 * static_cast<double>(i));
}

TEST(ThreadPool, AssistUntilRunsQueuedWorkOnTheWaitingThread) {
  ThreadPool pool(2);  // one worker; the assisting caller is the second lane
  std::atomic<int> done_count{0};
  constexpr int kJobs = 64;
  for (int i = 0; i < kJobs; ++i) pool.submit([&] { ++done_count; });
  pool.assist_until([&] { return done_count.load() >= kJobs; });
  EXPECT_EQ(done_count.load(), kJobs);
}

TEST(ThreadPool, AssistUntilReturnsOnExternallyCompletedCondition) {
  // Nothing queued: the waiter parks on the pool's wake signal and must
  // still notice a condition completed by a non-pool thread.
  ThreadPool pool(4);
  std::atomic<bool> flag{false};
  std::thread external([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    flag.store(true);
  });
  pool.assist_until([&] { return flag.load(); });
  EXPECT_TRUE(flag.load());
  external.join();
}

TEST(ThreadPool, AssistUntilSerialFallback) {
  ThreadPool pool(1);  // no workers: submit runs inline
  int ran = 0;
  pool.submit([&] { ++ran; });
  EXPECT_EQ(ran, 1);
  pool.assist_until([&] { return ran == 1; });  // must not hang
}

TEST(ThreadPool, ConfiguredThreadsHonorsEnv) {
  // setenv/getenv is process-global; restore whatever was there.
  const char* old = std::getenv("RFMIX_THREADS");
  const std::string saved = old ? old : "";
  ::setenv("RFMIX_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::configured_threads(), 3);
  ::setenv("RFMIX_THREADS", "0", 1);  // clamped up to 1
  EXPECT_EQ(ThreadPool::configured_threads(), 1);
  if (old)
    ::setenv("RFMIX_THREADS", saved.c_str(), 1);
  else
    ::unsetenv("RFMIX_THREADS");
}

}  // namespace
}  // namespace rfmix::runtime
