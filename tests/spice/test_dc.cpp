// DC operating-point tests: linear networks with known answers, nonlinear
// bias points, homotopy fallbacks, KCL-residual property checks.
#include "spice/op.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/rng.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_diode.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

TEST(Dc, VoltageDivider) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(10.0));
  ckt.add<Resistor>("r1", in, mid, 6e3);
  ckt.add<Resistor>("r2", mid, kGround, 4e3);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(mid), 4.0, 1e-6);
}

TEST(Dc, CurrentSourceIntoResistor) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  // 1 mA flowing from ground to n through the source raises n to +1 V.
  ckt.add<CurrentSource>("i1", kGround, n, Waveform::dc(1e-3));
  ckt.add<Resistor>("r1", n, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(n), 1.0, 1e-9);
}

TEST(Dc, VoltageSourceBranchCurrent) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  auto& v1 = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("r1", in, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  // 5 mA flows out of the + terminal, i.e. branch current (p->m through
  // source) is -5 mA.
  EXPECT_NEAR(v1.current(op), -5e-3, 1e-9);
}

TEST(Dc, WheatstoneBridge) {
  Circuit ckt;
  const NodeId top = ckt.node("top");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("v1", top, kGround, Waveform::dc(10.0));
  ckt.add<Resistor>("r1", top, a, 1e3);
  ckt.add<Resistor>("r2", a, kGround, 2e3);
  ckt.add<Resistor>("r3", top, b, 2e3);
  ckt.add<Resistor>("r4", b, kGround, 4e3);
  ckt.add<Resistor>("rg", a, b, 5e3);  // balanced bridge: no galvanometer current
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(a), op.v(b), 1e-6);
  EXPECT_NEAR(op.v(a), 10.0 * 2.0 / 3.0, 1e-6);
}

TEST(Dc, DiodeForwardDrop) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(5.0));
  ckt.add<Resistor>("r1", in, d, 1e3);
  ckt.add<Diode>("d1", d, kGround);
  const Solution op = dc_operating_point(ckt);
  // Forward drop of a 1e-14 A diode at ~4.3 mA is about 0.7 V.
  EXPECT_GT(op.v(d), 0.55);
  EXPECT_LT(op.v(d), 0.85);
  // KCL: resistor current equals diode current.
  const double ir = (op.v(in) - op.v(d)) / 1e3;
  EXPECT_GT(ir, 4e-3);
}

TEST(Dc, DiodeReverseBlocks) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(-5.0));
  ckt.add<Resistor>("r1", in, d, 1e3);
  ckt.add<Diode>("d1", d, kGround);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(d), -5.0, 0.01);  // nearly all voltage across the diode
}

TEST(Dc, NmosCommonSourceAmplifierBias) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.55));
  ckt.add<Resistor>("rl", vdd, d, 2e3);
  ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  const Solution op = dc_operating_point(ckt);
  // Drain must sit between the rails, below VDD (current flows).
  EXPECT_GT(op.v(d), 0.05);
  EXPECT_LT(op.v(d), 1.19);
}

TEST(Dc, CmosInverterSwitchPoint) {
  // Sweep the inverter input; output must fall monotonically through mid-rail.
  auto vout_at = [](double vin) {
    Circuit ckt;
    const NodeId vdd = ckt.node("vdd");
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
    ckt.add<VoltageSource>("vin", in, kGround, Waveform::dc(vin));
    ckt.add<Mosfet>("mn", out, in, kGround, kGround, tech65::nmos(2e-6));
    ckt.add<Mosfet>("mp", out, in, vdd, vdd, tech65::pmos(5e-6));
    return dc_operating_point(ckt).v(out);
  };
  EXPECT_GT(vout_at(0.0), 1.15);
  EXPECT_LT(vout_at(1.2), 0.05);
  double prev = vout_at(0.0);
  for (double vin = 0.1; vin <= 1.2; vin += 0.1) {
    const double vo = vout_at(vin);
    EXPECT_LE(vo, prev + 1e-6) << "vin=" << vin;
    prev = vo;
  }
}

TEST(Dc, NmosDiodeConnectedStack) {
  // Two diode-connected NMOS in series across 1.2 V: each takes ~half.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  ckt.add<Mosfet>("m1", vdd, vdd, mid, kGround, tech65::nmos(4e-6));
  ckt.add<Mosfet>("m2", mid, mid, kGround, kGround, tech65::nmos(4e-6));
  const Solution op = dc_operating_point(ckt);
  EXPECT_GT(op.v(mid), 0.35);
  EXPECT_LT(op.v(mid), 0.85);
}

TEST(Dc, TotalPowerBalancesSourcesAndLoads) {
  // Conservation: sum of dissipated power over all devices is ~0 (sources
  // negative, resistors positive).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(3.0));
  ckt.add<Resistor>("r1", in, mid, 1e3);
  ckt.add<Resistor>("r2", mid, kGround, 2e3);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(total_dissipated_power(ckt, op), 0.0, 1e-9);
}

// Property: random resistive ladder networks satisfy KCL at every node.
class DcKclProperty : public ::testing::TestWithParam<int> {};

TEST_P(DcKclProperty, RandomResistiveNetworkSatisfiesKcl) {
  mathx::Rng rng(static_cast<std::uint64_t>(GetParam()) + 500);
  Circuit ckt;
  const int n_nodes = 6;
  std::vector<NodeId> nodes;
  for (int i = 0; i < n_nodes; ++i) nodes.push_back(ckt.node("n" + std::to_string(i)));
  ckt.add<VoltageSource>("v1", nodes[0], kGround, Waveform::dc(rng.uniform(1.0, 5.0)));
  struct Edge { NodeId a, b; double r; };
  std::vector<Edge> edges;
  // Spanning chain plus random chords; every node also leaks to ground so
  // the system is always well posed.
  for (int i = 0; i + 1 < n_nodes; ++i)
    edges.push_back({nodes[static_cast<std::size_t>(i)],
                     nodes[static_cast<std::size_t>(i + 1)], rng.uniform(100.0, 10e3)});
  for (int k = 0; k < 4; ++k) {
    const auto a = rng.uniform_index(n_nodes);
    const auto b = rng.uniform_index(n_nodes);
    if (a == b) continue;
    edges.push_back({nodes[a], nodes[b], rng.uniform(100.0, 10e3)});
  }
  for (int i = 1; i < n_nodes; ++i)
    edges.push_back({nodes[static_cast<std::size_t>(i)], kGround, rng.uniform(1e3, 50e3)});
  int idx = 0;
  for (const auto& e : edges)
    ckt.add<Resistor>("r" + std::to_string(idx++), e.a, e.b, e.r);

  const Solution op = dc_operating_point(ckt);
  // KCL at each non-driven node: net resistor current ~ 0.
  for (int i = 1; i < n_nodes; ++i) {
    double net = 0.0;
    for (const auto& e : edges) {
      if (e.a == nodes[static_cast<std::size_t>(i)])
        net += (op.v(e.a) - op.v(e.b)) / e.r;
      else if (e.b == nodes[static_cast<std::size_t>(i)])
        net += (op.v(e.b) - op.v(e.a)) / e.r;
    }
    EXPECT_NEAR(net, 0.0, 1e-8) << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DcKclProperty, ::testing::Range(0, 8));

TEST(Dc, UnconnectedNodeIsHandledByGmin) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId floating = ckt.node("float");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("r1", in, kGround, 1e3);
  ckt.add<Capacitor>("c1", floating, kGround, 1e-12);  // open in DC
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(floating), 0.0, 1e-6);
}

}  // namespace
}  // namespace rfmix::spice
