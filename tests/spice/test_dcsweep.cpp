// DC sweep tests: transfer curves and I-V characteristics.
#include "spice/dcsweep.hpp"

#include <gtest/gtest.h>

#include "spice/circuit.hpp"
#include "spice/devices_diode.hpp"
#include "spice/devices_passive.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

TEST(DcSweep, LinearCircuitScalesLinearly) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  auto& src = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  ckt.add<Resistor>("r1", in, mid, 3e3);
  ckt.add<Resistor>("r2", mid, kGround, 1e3);
  const DcSweepResult res = dc_sweep(ckt, src, 0.0, 4.0, 5);
  ASSERT_EQ(res.size(), 5u);
  const auto vm = res.v(mid);
  for (std::size_t i = 0; i < res.size(); ++i)
    EXPECT_NEAR(vm[i], res.values[i] / 4.0, 1e-6);
}

TEST(DcSweep, DiodeIvCurveIsExponential) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& src = ckt.add<VoltageSource>("v1", a, kGround, Waveform::dc(0.0));
  ckt.add<Diode>("d1", a, kGround);
  const DcSweepResult res = dc_sweep(ckt, src, 0.55, 0.75, 9);
  const auto i = res.source_current(src);
  // Current through the source is negative (flows out of +); magnitude
  // should grow ~ a decade per 60 mV.
  const double ratio = i.back() / i[0];
  EXPECT_GT(ratio, 100.0);   // 200 mV ~ >3 decades for n=1... at least 2
  EXPECT_LT(i.back(), 0.0);
  EXPECT_LT(i[0], 0.0);
}

TEST(DcSweep, MosTransferCurveMonotone) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  auto& vg = ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.0));
  ckt.add<Resistor>("rl", vdd, d, 1e3);
  ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  const DcSweepResult res = dc_sweep(ckt, vg, 0.0, 1.2, 25);
  const auto vd_trace = res.v(d);
  // Output falls monotonically from ~VDD as the gate rises.
  EXPECT_GT(vd_trace.front(), 1.15);
  EXPECT_LT(vd_trace.back(), 0.4);
  for (std::size_t i = 1; i < vd_trace.size(); ++i)
    EXPECT_LE(vd_trace[i], vd_trace[i - 1] + 1e-9);
}

TEST(DcSweep, RestoresSourceWaveform) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  auto& src = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(2.5));
  ckt.add<Resistor>("r1", in, kGround, 1e3);
  (void)dc_sweep(ckt, src, 0.0, 1.0, 3);
  EXPECT_DOUBLE_EQ(src.waveform().dc_value(), 2.5);
}

TEST(DcSweep, TooFewPointsThrows) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  auto& src = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  ckt.add<Resistor>("r1", in, kGround, 1e3);
  EXPECT_THROW(dc_sweep(ckt, src, 0.0, 1.0, 1), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::spice
