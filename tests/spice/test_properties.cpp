// Cross-cutting simulator property tests: superposition, AC-vs-transient
// consistency, reciprocity, and adjoint-vs-forward equivalence — the
// invariants that tie the independent analysis engines together.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "mathx/rng.hpp"
#include "mathx/units.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/dcsweep.hpp"
#include "spice/devices_diode.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/noise.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"

namespace rfmix::spice {
namespace {

/// Random linear resistive network shared by several properties.
struct RandomNetwork {
  Circuit ckt;
  std::vector<NodeId> nodes;
  VoltageSource* va = nullptr;
  VoltageSource* vb = nullptr;

  explicit RandomNetwork(std::uint64_t seed) {
    mathx::Rng rng(seed);
    for (int i = 0; i < 5; ++i) nodes.push_back(ckt.node("n" + std::to_string(i)));
    va = &ckt.add<VoltageSource>("va", nodes[0], kGround, Waveform::dc(0.0));
    vb = &ckt.add<VoltageSource>("vb", nodes[1], kGround, Waveform::dc(0.0));
    int idx = 0;
    for (std::size_t i = 0; i < nodes.size(); ++i)
      for (std::size_t j = i + 1; j < nodes.size(); ++j)
        ckt.add<Resistor>("r" + std::to_string(idx++), nodes[i], nodes[j],
                          rng.uniform(100.0, 5e3));
    for (std::size_t i = 2; i < nodes.size(); ++i)
      ckt.add<Resistor>("rg" + std::to_string(i), nodes[i], kGround,
                        rng.uniform(500.0, 20e3));
  }
};

class LinearProperties : public ::testing::TestWithParam<int> {};

TEST_P(LinearProperties, SuperpositionHolds) {
  RandomNetwork net(static_cast<std::uint64_t>(GetParam()) + 40);
  const NodeId probe = net.nodes[3];
  auto solve_with = [&](double a, double b) {
    net.va->set_waveform(Waveform::dc(a));
    net.vb->set_waveform(Waveform::dc(b));
    return dc_operating_point(net.ckt).v(probe);
  };
  const double v_a = solve_with(2.0, 0.0);
  const double v_b = solve_with(0.0, -1.5);
  const double v_ab = solve_with(2.0, -1.5);
  EXPECT_NEAR(v_ab, v_a + v_b, 1e-7);
}

TEST_P(LinearProperties, AcMatchesTransientSteadyState) {
  // Drive one source with a sine; the transient steady-state amplitude at a
  // probe node must match the AC solution.
  RandomNetwork net(static_cast<std::uint64_t>(GetParam()) + 80);
  const NodeId probe = net.nodes[4];
  // Add one capacitor so the network has actual dynamics.
  net.ckt.add<Capacitor>("cx", probe, kGround, 2e-9);
  const double f = 1e6;

  net.va->set_ac(1.0);
  const Solution op = dc_operating_point(net.ckt);
  const AcResult ac = ac_sweep(net.ckt, op, {f});
  const double amp_ac = std::abs(ac.v(0, probe));

  net.va->set_waveform(Waveform::sine(1.0, f));
  const TranResult tr =
      transient(net.ckt, 8.0 / f, 1.0 / (f * 400.0), {{probe, kGround, "p"}});
  double peak = 0.0;
  const std::size_t n = tr.time_s.size();
  for (std::size_t i = n - 800; i < n; ++i)
    peak = std::max(peak, std::abs(tr.waveform(0)[i]));
  EXPECT_NEAR(peak, amp_ac, 0.03 * amp_ac + 1e-9);
}

TEST_P(LinearProperties, ReciprocityOfResistiveNetwork) {
  // For a reciprocal network, the transfer current-source@i -> voltage@j
  // equals source@j -> voltage@i.
  RandomNetwork net(static_cast<std::uint64_t>(GetParam()) + 120);
  // Remove the voltage sources' influence by setting them to 0 V (they
  // remain as shorts, which is fine: the network stays reciprocal).
  const NodeId ni = net.nodes[2];
  const NodeId nj = net.nodes[4];
  auto transfer = [&](NodeId from, NodeId to) {
    Circuit& c = net.ckt;
    auto& is = c.add<CurrentSource>("itest", kGround, from, Waveform::dc(1e-3));
    const double v = dc_operating_point(c).v(to);
    // Remove influence for the next call by zeroing the source.
    is.set_waveform(Waveform::dc(0.0));
    return v;
  };
  const double t_ij = transfer(ni, nj);
  const double t_ji = transfer(nj, ni);
  EXPECT_NEAR(t_ij, t_ji, 1e-9 + 1e-6 * std::abs(t_ij));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearProperties, ::testing::Range(0, 6));

TEST(NoiseProperty, AdjointMatchesForwardTransfer) {
  // The noise analysis computes source->output transfers via the transposed
  // system; verify one of them against an explicit forward AC solve with a
  // unit AC current source in place of the noise source.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<Resistor>("r1", a, kGround, 2e3);
  ckt.add<Resistor>("r2", a, b, 5e3);
  ckt.add<Resistor>("r3", b, kGround, 1e3);
  ckt.add<Capacitor>("c1", b, kGround, 1e-12);
  const Solution op = dc_operating_point(ckt);
  const double f = 50e6;

  // Forward: unit AC current from a to ground; output voltage at b.
  Circuit fwd;
  const NodeId fa = fwd.node("a");
  const NodeId fb = fwd.node("b");
  fwd.add<Resistor>("r1", fa, kGround, 2e3);
  fwd.add<Resistor>("r2", fa, fb, 5e3);
  fwd.add<Resistor>("r3", fb, kGround, 1e3);
  fwd.add<Capacitor>("c1", fb, kGround, 1e-12);
  auto& isrc = fwd.add<CurrentSource>("i1", fa, kGround, Waveform::dc(0.0));
  isrc.set_ac(1.0);
  const Solution fop = dc_operating_point(fwd);
  const AcResult ac = ac_sweep(fwd, fop, {f});
  const double t_forward2 = std::norm(ac.v(0, fb));

  // Adjoint: r1's thermal noise contribution / its PSD = |transfer|^2.
  const NoiseResult nr = noise_analysis(ckt, op, b, kGround, {f});
  const double psd_r1 = 4.0 * mathx::kBoltzmann * mathx::kT0 / 2e3;
  const double t_adjoint2 = nr.contribution_psd(0, "r1") / psd_r1;
  EXPECT_NEAR(t_adjoint2, t_forward2, t_forward2 * 1e-6);
}

TEST(TranProperty, TimeInvarianceUnderDelay) {
  // Delaying the stimulus delays the response without changing its shape.
  auto run = [&](double delay) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    PulseWave pw;
    pw.v1 = 0.0;
    pw.v2 = 1.0;
    pw.delay_s = delay;
    pw.rise_s = 1e-12;
    pw.width_s = 1.0;
    ckt.add<VoltageSource>("v1", in, kGround, Waveform(pw));
    ckt.add<Resistor>("r1", in, out, 1e3);
    ckt.add<Capacitor>("c1", out, kGround, 1e-9);
    return transient(ckt, 5e-6, 5e-9, {{out, kGround, "o"}});
  };
  const TranResult a = run(0.0);
  const TranResult b = run(1e-6);
  const std::size_t shift = 200;  // 1 us / 5 ns
  for (std::size_t i = 0; i + shift < b.waveform(0).size(); i += 37) {
    EXPECT_NEAR(b.waveform(0)[i + shift], a.waveform(0)[i], 5e-3);
  }
}

#if RFMIX_OBS_ENABLED

// ---------------------------------------------------------------------------
// Instrumentation contract: the telemetry counters must account for the
// solver work exactly, on every code path, at every thread count. These are
// property tests over the same random networks as above.
// ---------------------------------------------------------------------------

/// Named counter deltas between two snapshots, restricted to a prefix set.
/// runtime.* is deliberately excluded by callers: pool scheduling counters
/// (tasks stolen/executed) are allowed to vary run to run.
std::map<std::string, std::uint64_t> counter_deltas(
    const obs::TelemetrySnapshot& before, const obs::TelemetrySnapshot& after,
    const std::vector<std::string>& prefixes) {
  std::map<std::string, std::uint64_t> base;
  for (const auto& c : before.counters) base[c.name] = c.value;
  std::map<std::string, std::uint64_t> out;
  for (const auto& c : after.counters) {
    bool keep = false;
    for (const std::string& p : prefixes)
      if (c.name.rfind(p, 0) == 0) keep = true;
    if (!keep) continue;
    const auto it = base.find(c.name);
    const std::uint64_t prev = it == base.end() ? 0 : it->second;
    if (c.value != prev) out[c.name] = c.value - prev;
  }
  return out;
}

std::uint64_t delta(std::string_view name, std::uint64_t before) {
  return obs::counter_value(name) - before;
}

class InstrumentationContract : public ::testing::TestWithParam<int> {};

TEST_P(InstrumentationContract, TranStepAccountingBalances) {
  // accepted + rejected == attempted must hold for fixed-grid and adaptive
  // stepping alike, on randomized RC networks.
  RandomNetwork net(static_cast<std::uint64_t>(GetParam()) + 200);
  mathx::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  for (std::size_t i = 2; i < net.nodes.size(); ++i)
    net.ckt.add<Capacitor>("ci" + std::to_string(i), net.nodes[i], kGround,
                           rng.uniform(0.5e-9, 5e-9));
  net.va->set_waveform(Waveform::sine(1.0, 1e6));

  for (const bool adaptive : {false, true}) {
    const std::uint64_t att = obs::counter_value("spice.tran.steps_attempted");
    const std::uint64_t acc = obs::counter_value("spice.tran.steps_accepted");
    const std::uint64_t rej = obs::counter_value("spice.tran.steps_rejected");
    TranOptions opts;
    opts.adaptive = adaptive;
    const TranResult tr =
        transient(net.ckt, 4e-6, 4e-9, {{net.nodes[3], kGround, "p"}}, opts);
    EXPECT_GT(tr.time_s.size(), 1u);
    EXPECT_GT(delta("spice.tran.steps_accepted", acc), 0u);
    EXPECT_EQ(delta("spice.tran.steps_accepted", acc) +
                  delta("spice.tran.steps_rejected", rej),
              delta("spice.tran.steps_attempted", att))
        << (adaptive ? "adaptive" : "fixed-grid");
  }
}

TEST_P(InstrumentationContract, LuWorkCoversNewtonWork) {
  // Every Newton iteration factors the Jacobian once, and every solve runs
  // at least one iteration, so over any interval:
  //   lu.factorizations >= newton.iterations >= newton.solves.
  const std::uint64_t lu = obs::counter_value("spice.lu.factorizations");
  const std::uint64_t it = obs::counter_value("spice.newton.iterations");
  const std::uint64_t so = obs::counter_value("spice.newton.solves");

  RandomNetwork net(static_cast<std::uint64_t>(GetParam()) + 300);
  net.va->set_waveform(Waveform::dc(1.0));
  (void)dc_operating_point(net.ckt);

  EXPECT_GT(delta("spice.newton.solves", so), 0u);
  EXPECT_GE(delta("spice.newton.iterations", it), delta("spice.newton.solves", so));
  EXPECT_GE(delta("spice.lu.factorizations", lu), delta("spice.newton.iterations", it));
}

INSTANTIATE_TEST_SUITE_P(Seeds, InstrumentationContract, ::testing::Range(0, 4));

TEST(InstrumentationContract, SolverCountersInvariantUnderThreadCount) {
  // The determinism contract extends to telemetry: for a deterministic
  // parallel analysis (chunked DC sweep), every spice.* counter delta is
  // bit-identical at 1 thread and at 8. Only runtime.* scheduling counters
  // may differ, which is why they are excluded here.
  auto sweep_deltas = [&](int threads) {
    runtime::ScopedPool pool(threads);
    const obs::TelemetrySnapshot before = obs::snapshot();
    const DcSweepResult r = dc_sweep(
        [] {
          DcSweepInstance inst;
          auto ckt = std::make_shared<Circuit>();
          const NodeId in = ckt->node("in");
          const NodeId out = ckt->node("out");
          inst.source =
              &ckt->add<VoltageSource>("vs", in, kGround, Waveform::dc(0.0));
          ckt->add<Resistor>("r1", in, out, 1e3);
          ckt->add<Resistor>("r2", out, kGround, 2e3);
          ckt->add<Diode>("d1", out, kGround);
          inst.circuit = std::move(ckt);
          return inst;
        },
        -1.0, 1.0, 41);
    EXPECT_EQ(r.size(), 41u);
    return counter_deltas(before, obs::snapshot(), {"spice."});
  };

  const auto serial = sweep_deltas(1);
  const auto parallel = sweep_deltas(8);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

#endif  // RFMIX_OBS_ENABLED

}  // namespace
}  // namespace rfmix::spice
