// Coupled-inductor and balun tests.
#include "spice/devices_magnetics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"

namespace rfmix::spice {
namespace {

TEST(CoupledInductors, ParameterValidation) {
  Circuit ckt;
  const NodeId a = ckt.node("a"), b = ckt.node("b");
  EXPECT_THROW(ckt.add<CoupledInductors>("t", a, kGround, b, kGround, -1e-9, 1e-9, 0.9),
               std::invalid_argument);
  EXPECT_THROW(ckt.add<CoupledInductors>("t", a, kGround, b, kGround, 1e-9, 1e-9, 1.0),
               std::invalid_argument);
  auto& t = ckt.add<CoupledInductors>("t", a, kGround, b, kGround, 4e-9, 1e-9, 0.5);
  EXPECT_NEAR(t.mutual(), 0.5 * std::sqrt(4e-9 * 1e-9), 1e-15);
}

TEST(CoupledInductors, AcTransformerVoltageRatio) {
  // Tightly coupled 4:1 inductance ratio -> 2:1 voltage ratio (open
  // secondary, k ~ 1).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId sec = ckt.node("sec");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<CoupledInductors>("t1", in, kGround, sec, kGround, 4e-9, 1e-9, 0.999);
  ckt.add<Resistor>("rl", sec, kGround, 1e6);  // ~open
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e9});
  EXPECT_NEAR(std::abs(res.v(0, sec)), 0.5, 0.01);
}

TEST(CoupledInductors, ImpedanceTransformation) {
  // Loaded ideal-ish transformer reflects the load as n^2 * RL to the
  // primary; check via the primary input current.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId sec = ckt.node("sec");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  // L1/L2 = 4 -> n = 2 (primary:secondary = 2:1), RL = 50 -> Zin ~ 200.
  ckt.add<CoupledInductors>("t1", in, kGround, sec, kGround, 400e-9, 100e-9, 0.9999);
  ckt.add<Resistor>("rl", sec, kGround, 50.0);
  const Solution op = dc_operating_point(ckt);
  // High frequency so the magnetizing reactance is >> reflected load.
  const AcResult res = ac_sweep(ckt, op, {10e9});
  const int ub = res.layout.branch_unknown(
      ckt.find_device("t1")->branch_base());
  const std::complex<double> i1 = res.solutions[0][static_cast<std::size_t>(ub)];
  EXPECT_NEAR(1.0 / std::abs(i1), 200.0, 25.0);
}

TEST(CoupledInductors, DcBothWindingsShort) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("r1", in, a, 1e3);
  ckt.add<CoupledInductors>("t1", a, kGround, b, kGround, 1e-9, 1e-9, 0.9);
  ckt.add<Resistor>("r2", b, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  // Near-shorts: only the 0.1 ohm winding resistance remains.
  EXPECT_NEAR(op.v(a), 0.0, 1e-3);
  EXPECT_NEAR(op.v(b), 0.0, 1e-3);
}

TEST(Balun, ProducesBalancedAntiphaseOutputs) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId ct = ckt.node("ct");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<VoltageSource>("vct", ct, kGround, Waveform::dc(0.6));  // common mode
  const BalunNodes out = add_balun(ckt, "balun", in, ct);
  ckt.add<Resistor>("rl_p", out.out_p, ct, 200.0);
  ckt.add<Resistor>("rl_m", out.out_m, ct, 200.0);
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {2.45e9});
  const std::complex<double> vp = res.v(0, out.out_p);
  const std::complex<double> vm = res.v(0, out.out_m);
  // Anti-phase and amplitude-balanced.
  EXPECT_NEAR(std::abs(vp), std::abs(vm), 0.02 * std::abs(vp));
  EXPECT_NEAR(std::abs(std::arg(vp) - std::arg(vm)), mathx::kPi, 0.15);
  // Differential output actually carries signal.
  EXPECT_GT(std::abs(vp - vm), 0.2);
}

TEST(Balun, DcOutputsSitAtCenterTap) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId ct = ckt.node("ct");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  ckt.add<VoltageSource>("vct", ct, kGround, Waveform::dc(0.6));
  const BalunNodes out = add_balun(ckt, "balun", in, ct);
  ckt.add<Resistor>("rl_p", out.out_p, ct, 200.0);
  ckt.add<Resistor>("rl_m", out.out_m, ct, 200.0);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(out.out_p), 0.6, 1e-6);
  EXPECT_NEAR(op.v(out.out_m), 0.6, 1e-6);
}

TEST(CoupledInductors, TransientEnergyTransfer) {
  // Drive a step into the primary; the secondary responds with the coupled
  // voltage transient.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId sec = ckt.node("sec");
  PulseWave pw;
  pw.v1 = 0.0;
  pw.v2 = 1.0;
  pw.rise_s = 1e-10;
  pw.width_s = 1.0;
  ckt.add<VoltageSource>("v1", in, kGround, Waveform(pw));
  ckt.add<Resistor>("rs", in, ckt.node("p"), 50.0);
  ckt.add<CoupledInductors>("t1", ckt.find_node("p"), kGround, sec, kGround, 10e-9,
                            10e-9, 0.95);
  ckt.add<Resistor>("rl", sec, kGround, 50.0);
  const TranResult res =
      transient(ckt, 2e-9, 1e-12, {{sec, kGround, "sec"}});
  double peak = 0.0;
  for (const double v : res.waveform(0)) peak = std::max(peak, std::abs(v));
  EXPECT_GT(peak, 0.2);  // real coupling
  // And it decays as the step settles (L/R time constant).
  EXPECT_LT(std::abs(res.waveform(0).back()), peak * 0.5);
}

}  // namespace
}  // namespace rfmix::spice
