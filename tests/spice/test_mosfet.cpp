// MOSFET model validation: EKV smoothness/symmetry, Jacobian-vs-finite-
// difference property checks, Level-1 region behaviour, PMOS mirror
// symmetry, and noise-source sanity.
#include "spice/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/rng.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

/// Build a single-transistor test fixture with ideal voltage sources on
/// every terminal, solve the operating point, and return the device eval.
struct MosFixture {
  Circuit ckt;
  Mosfet* mos = nullptr;

  MosFixture(const MosParams& p, double vg, double vd, double vs, double vb) {
    const NodeId d = ckt.node("d");
    const NodeId g = ckt.node("g");
    const NodeId s = ckt.node("s");
    const NodeId b = ckt.node("b");
    ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(vg));
    ckt.add<VoltageSource>("vd", d, kGround, Waveform::dc(vd));
    ckt.add<VoltageSource>("vs", s, kGround, Waveform::dc(vs));
    ckt.add<VoltageSource>("vb", b, kGround, Waveform::dc(vb));
    mos = &ckt.add<Mosfet>("m1", d, g, s, b, p);
  }

  MosOperatingPoint solve() { return mos->evaluate(dc_operating_point(ckt)); }
};

double ids_at(const MosParams& p, double vg, double vd, double vs, double vb) {
  MosFixture f(p, vg, vd, vs, vb);
  return f.solve().ids;
}

TEST(EkvModel, CurrentIncreasesWithVgs) {
  const MosParams p = tech65::nmos(10e-6);
  double prev = ids_at(p, 0.2, 0.6, 0.0, 0.0);
  for (double vg = 0.3; vg <= 1.2; vg += 0.1) {
    const double id = ids_at(p, vg, 0.6, 0.0, 0.0);
    EXPECT_GT(id, prev) << "vg=" << vg;
    prev = id;
  }
}

TEST(EkvModel, SubthresholdIsExponential) {
  // In weak inversion the current should scale ~exp(vgs/(n*vt)): a 60*n mV
  // gate step is one decade.
  const MosParams p = tech65::nmos(10e-6);
  const double n_vt_ln10 = p.n_slope * 0.02585 * std::log(10.0);
  const double i1 = ids_at(p, 0.15, 0.6, 0.0, 0.0);
  const double i2 = ids_at(p, 0.15 + n_vt_ln10, 0.6, 0.0, 0.0);
  EXPECT_NEAR(i2 / i1, 10.0, 1.5);
}

TEST(EkvModel, DrainSourceSymmetry) {
  // ids(vd, vs) = -ids(vs, vd) exactly, by construction.
  const MosParams p = tech65::nmos(20e-6);
  const double fwd = ids_at(p, 0.8, 0.5, 0.1, 0.0);
  const double rev = ids_at(p, 0.8, 0.1, 0.5, 0.0);
  EXPECT_NEAR(fwd, -rev, std::abs(fwd) * 1e-9);
}

TEST(EkvModel, ZeroVdsZeroCurrent) {
  const MosParams p = tech65::nmos(20e-6);
  EXPECT_NEAR(ids_at(p, 1.0, 0.3, 0.3, 0.0), 0.0, 1e-12);
}

TEST(EkvModel, SaturationCurrentMagnitudePlausible) {
  // W/L = 10u/65n at vov ~ 0.25 V: expect ids in the hundreds of uA to
  // a few mA (square law: 0.5 * 400u * 154 * 0.0625 ~ 1.9 mA, EKV with
  // n-slope lands below that).
  const MosParams p = tech65::nmos(10e-6);
  const double id = ids_at(p, 0.6, 1.2, 0.0, 0.0);
  EXPECT_GT(id, 100e-6);
  EXPECT_LT(id, 5e-3);
}

TEST(EkvModel, PmosMirrorsNmos) {
  // A PMOS with the same kp as NMOS and mirrored bias must carry the exact
  // mirrored current.
  MosParams pn = tech65::nmos(10e-6);
  MosParams pp = pn;
  pp.type = MosType::kPmos;
  const double idn = ids_at(pn, 0.8, 0.6, 0.0, 0.0);
  const double idp = ids_at(pp, -0.8, -0.6, 0.0, 0.0);
  EXPECT_NEAR(idp, -idn, std::abs(idn) * 1e-9);
}

TEST(EkvModel, PmosConductsInCircuitOrientation) {
  // Standard orientation: source at VDD, gate low -> device on, current
  // flows source->drain (ids negative into drain).
  const MosParams p = tech65::pmos(10e-6);
  const double id = ids_at(p, 0.0, 0.5, 1.2, 1.2);  // vg=0, vd=0.5, vs=vb=1.2
  EXPECT_LT(id, -10e-6);
}

// Property test: analytic Jacobian matches finite differences at random
// bias points, for all four terminals, both polarities, both model levels.
struct JacobianCase {
  MosType type;
  MosModelLevel level;
  std::uint64_t seed;
};

class MosJacobian : public ::testing::TestWithParam<JacobianCase> {};

TEST_P(MosJacobian, MatchesFiniteDifference) {
  const auto param = GetParam();
  mathx::Rng rng(param.seed);
  MosParams p = param.type == MosType::kNmos ? tech65::nmos(5e-6) : tech65::pmos(5e-6);
  p.level = param.level;

  for (int trial = 0; trial < 20; ++trial) {
    const double vg = rng.uniform(-0.2, 1.3);
    const double vd = rng.uniform(0.0, 1.2);
    const double vs = rng.uniform(0.0, 0.6);
    const double vb = param.type == MosType::kNmos ? 0.0 : 1.2;

    // Level-1 is only piecewise smooth; skip points near region boundaries
    // where one-sided derivatives differ.
    if (param.level == MosModelLevel::kLevel1) {
      const double vgs = param.type == MosType::kNmos ? vg - vs : vs - vg;
      const double vds = param.type == MosType::kNmos ? vd - vs : vs - vd;
      if (std::abs(vgs - p.vto) < 0.05 || std::abs(vds - (vgs - p.vto)) < 0.05 ||
          std::abs(vds) < 0.05)
        continue;
    }

    Circuit ckt;
    const NodeId nd = ckt.node("d"), ng = ckt.node("g"), ns = ckt.node("s"),
                 nb = ckt.node("b");
    Mosfet& m = ckt.add<Mosfet>("m", nd, ng, ns, nb, p);
    ckt.finalize();
    auto make_sol = [&](double dg, double dd, double ds, double db) {
      Solution x = Solution::zeros(ckt.layout());
      x.raw()[static_cast<std::size_t>(ckt.layout().node_unknown(ng))] = vg + dg;
      x.raw()[static_cast<std::size_t>(ckt.layout().node_unknown(nd))] = vd + dd;
      x.raw()[static_cast<std::size_t>(ckt.layout().node_unknown(ns))] = vs + ds;
      x.raw()[static_cast<std::size_t>(ckt.layout().node_unknown(nb))] = vb + db;
      return x;
    };

    const double h = 1e-6;
    const MosOperatingPoint op0 = m.evaluate(make_sol(0, 0, 0, 0));
    const double gm_fd =
        (m.evaluate(make_sol(h, 0, 0, 0)).ids - m.evaluate(make_sol(-h, 0, 0, 0)).ids) /
        (2 * h);
    const double gds_fd =
        (m.evaluate(make_sol(0, h, 0, 0)).ids - m.evaluate(make_sol(0, -h, 0, 0)).ids) /
        (2 * h);
    const double gmb_fd =
        (m.evaluate(make_sol(0, 0, 0, h)).ids - m.evaluate(make_sol(0, 0, 0, -h)).ids) /
        (2 * h);

    const double scale = std::max({std::abs(gm_fd), std::abs(gds_fd), 1e-9});
    EXPECT_NEAR(op0.gm, gm_fd, 1e-4 * scale + 1e-12) << "trial " << trial;
    EXPECT_NEAR(op0.gds, gds_fd, 1e-4 * scale + 1e-12) << "trial " << trial;
    EXPECT_NEAR(op0.gmb, gmb_fd, 1e-4 * scale + 1e-12) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, MosJacobian,
    ::testing::Values(JacobianCase{MosType::kNmos, MosModelLevel::kEkv, 1},
                      JacobianCase{MosType::kPmos, MosModelLevel::kEkv, 2},
                      JacobianCase{MosType::kNmos, MosModelLevel::kLevel1, 3},
                      JacobianCase{MosType::kPmos, MosModelLevel::kLevel1, 4}));

TEST(Level1Model, RegionsBehaveClassically) {
  MosParams p = tech65::nmos(10e-6, 130e-9);
  p.level = MosModelLevel::kLevel1;
  p.lambda = 0.0;
  // Cutoff.
  EXPECT_NEAR(ids_at(p, 0.1, 1.0, 0.0, 0.0), 0.0, 1e-9);
  // Saturation: ids = beta/2 * vov^2.
  const double beta = p.beta();
  const double id_sat = ids_at(p, 0.75, 1.2, 0.0, 0.0);
  EXPECT_NEAR(id_sat, 0.5 * beta * 0.4 * 0.4, 0.01 * id_sat);
  // Triode at small vds: ids ~ beta * vov * vds.
  const double id_tri = ids_at(p, 0.75, 0.05, 0.0, 0.0);
  EXPECT_NEAR(id_tri, beta * (0.4 * 0.05 - 0.5 * 0.05 * 0.05), 0.02 * id_tri);
}

TEST(Mosfet, TriodeRonMatchesSmallSignalConductance) {
  // Passive-mixer switches rely on Ron = 1/gds in deep triode.
  const MosParams p = tech65::nmos(30e-6);
  MosFixture f(p, 1.2, 0.02, 0.0, 0.0);
  const MosOperatingPoint op = f.solve();
  const double ron_large_signal = op.vds / op.ids;
  const double ron_small_signal = 1.0 / op.gds;
  EXPECT_NEAR(ron_large_signal, ron_small_signal, 0.15 * ron_large_signal);
  EXPECT_LT(ron_large_signal, 300.0);  // a 30um 65nm switch is well under 300 ohm
}

TEST(Mosfet, NoiseSourcesPresentAndPositive) {
  const MosParams p = tech65::nmos(10e-6);
  MosFixture f(p, 0.7, 1.0, 0.0, 0.0);
  const Solution op = dc_operating_point(f.ckt);
  std::vector<NoiseSource> sources;
  f.mos->append_noise(sources, op);
  ASSERT_EQ(sources.size(), 2u);  // thermal + flicker
  const double thermal = sources[0].psd(1e6);
  const double flicker_low = sources[1].psd(1e3);
  const double flicker_high = sources[1].psd(1e7);
  EXPECT_GT(thermal, 0.0);
  EXPECT_GT(flicker_low, flicker_high);  // 1/f shape
  EXPECT_NEAR(flicker_low / flicker_high, 1e4, 1e4 * 0.01);
}

TEST(Mosfet, FlickerCornerIsFinite) {
  // The frequency where flicker equals thermal must exist and be positive.
  const MosParams p = tech65::nmos(50e-6);
  MosFixture f(p, 0.7, 1.0, 0.0, 0.0);
  const Solution op = dc_operating_point(f.ckt);
  std::vector<NoiseSource> sources;
  f.mos->append_noise(sources, op);
  const double thermal = sources[0].psd(1.0);
  // Solve kf*gm^2/(denom*f) = thermal for f.
  const double fc = sources[1].psd(1.0) / thermal;
  EXPECT_GT(fc, 1e3);
  EXPECT_LT(fc, 1e8);
}

TEST(Mosfet, DissipatedPowerIsIdsTimesVds) {
  const MosParams p = tech65::nmos(10e-6);
  MosFixture f(p, 0.8, 1.0, 0.0, 0.0);
  const Solution op = dc_operating_point(f.ckt);
  const MosOperatingPoint mop = f.mos->evaluate(op);
  EXPECT_NEAR(f.mos->dissipated_power(op), mop.ids * mop.vds, 1e-12);
}

TEST(EkvModel, TemperatureRaisesSubthresholdSlope) {
  // The weak-inversion decade step is ln(10)*n*kT/q: ~19% larger at 85 C
  // than at 27 C.
  auto decade_mv = [&](double temp_k) {
    MosParams p = tech65::nmos(10e-6);
    p.temperature_k = temp_k;
    const double vt = 1.380649e-23 * temp_k / 1.602176634e-19;
    const double step = p.n_slope * vt * std::log(10.0);
    const double i1 = ids_at(p, 0.15, 0.6, 0.0, 0.0);
    const double i2 = ids_at(p, 0.15 + step, 0.6, 0.0, 0.0);
    return i2 / i1;  // should be ~10 regardless of T if step tracks T
  };
  EXPECT_NEAR(decade_mv(300.0), 10.0, 1.6);
  EXPECT_NEAR(decade_mv(358.0), 10.0, 1.6);
}

TEST(EkvModel, CurrentFallsWithTemperatureAtFixedBias) {
  // kp is fixed in the params, but Is = 2 n beta Vt^2 grows with T while
  // the exponential argument shrinks: in strong inversion the EKV current
  // changes only mildly; in weak inversion it rises. Just pin the model's
  // continuity: both temperatures give finite, positive current.
  MosParams p = tech65::nmos(10e-6);
  p.temperature_k = 233.0;
  const double cold = ids_at(p, 0.6, 1.0, 0.0, 0.0);
  p.temperature_k = 398.0;
  const double hot = ids_at(p, 0.6, 1.0, 0.0, 0.0);
  EXPECT_GT(cold, 0.0);
  EXPECT_GT(hot, 0.0);
  EXPECT_NEAR(hot / cold, 1.0, 0.8);  // same order of magnitude
}

}  // namespace
}  // namespace rfmix::spice
