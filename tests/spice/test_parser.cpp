// Netlist parser tests.
#include "spice/parser.hpp"

#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {
namespace {

TEST(ParseNumber, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(parse_spice_number("1.5k"), 1500.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("10u"), 10e-6);
  EXPECT_DOUBLE_EQ(parse_spice_number("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(parse_spice_number("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(parse_spice_number("4p"), 4e-12);
  EXPECT_DOUBLE_EQ(parse_spice_number("5f"), 5e-15);
  EXPECT_DOUBLE_EQ(parse_spice_number("7m"), 7e-3);
  EXPECT_DOUBLE_EQ(parse_spice_number("1g"), 1e9);
  EXPECT_DOUBLE_EQ(parse_spice_number("2t"), 2e12);
  EXPECT_DOUBLE_EQ(parse_spice_number("42"), 42.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("1e3"), 1000.0);
  EXPECT_DOUBLE_EQ(parse_spice_number("10uF"), 10e-6);  // trailing unit letter
}

TEST(Parser, VoltageDividerNetlist) {
  const std::string net = R"(
* simple divider
V1 in 0 DC 10
R1 in mid 6k
R2 mid 0 4k
.end
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(ckt.find_node("mid")), 4.0, 1e-6);
}

TEST(Parser, CommentsAndCaseInsensitivity) {
  const std::string net = R"(
V1 IN 0 5      * inline comment
r1 IN out 1K
R2 OUT 0 1k
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(ckt.find_node("out")), 2.5, 1e-6);
}

TEST(Parser, SinSourceAndAc) {
  const std::string net = R"(
V1 in 0 SIN(0.6 0.1 2.4g) AC 1 90
R1 in 0 50
)";
  Circuit ckt = parse_netlist(net);
  ckt.finalize();
  auto* v = dynamic_cast<VoltageSource*>(ckt.find_device("v1"));
  ASSERT_NE(v, nullptr);
  EXPECT_DOUBLE_EQ(v->waveform().dc_value(), 0.6);
  EXPECT_DOUBLE_EQ(v->ac_magnitude(), 1.0);
  EXPECT_NEAR(v->waveform().value(0.25 / 2.4e9), 0.7, 1e-6);
}

TEST(Parser, MosWithGeometry) {
  const std::string net = R"(
VDD vdd 0 1.2
VG g 0 0.6
M1 d g 0 0 NMOS W=10u L=65n
RL vdd d 2k
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  const double vd = op.v(ckt.find_node("d"));
  EXPECT_GT(vd, 0.01);
  EXPECT_LT(vd, 1.19);
}

TEST(Parser, PmosAndControlledSources) {
  const std::string net = R"(
VDD vdd 0 1.2
VIN in 0 0.3
M1 out in vdd vdd PMOS W=20u L=65n
RL out 0 5k
E1 buf 0 out 0 2.0
G1 0 isink buf 0 1m
RS isink 0 1k
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(ckt.find_node("buf")), 2.0 * op.v(ckt.find_node("out")), 1e-6);
  EXPECT_NEAR(op.v(ckt.find_node("isink")),
              1e-3 * op.v(ckt.find_node("buf")) * 1e3, 1e-4);
}

TEST(Parser, DiodeCard) {
  const std::string net = R"(
V1 in 0 5
R1 in d 1k
D1 d 0 IS=1e-14 N=1.0
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  EXPECT_GT(op.v(ckt.find_node("d")), 0.5);
  EXPECT_LT(op.v(ckt.find_node("d")), 0.9);
}

TEST(Parser, ErrorsCarryLineNumbers) {
  EXPECT_THROW(parse_netlist("R1 a 0\n"), ParseError);      // too few fields
  EXPECT_THROW(parse_netlist("X1 a 0 1k\n"), ParseError);   // unknown card
  EXPECT_THROW(parse_netlist("M1 d g s b FINFET\n"), ParseError);
  try {
    parse_netlist("V1 a 0 1\nR1 a 0\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, EndCardStopsParsing) {
  const std::string net = R"(
V1 in 0 1
R1 in 0 1k
.end
garbage that would otherwise throw
)";
  EXPECT_NO_THROW(parse_netlist(net));
}

TEST(Parser, PulseAndPwlSources) {
  const std::string net = R"(
V1 a 0 PULSE(0 1.2 1n 0.1n 0.1n 4n 10n)
V2 b 0 PWL(0 0, 1u 1, 2u 0.5)
R1 a 0 1k
R2 b 0 1k
)";
  Circuit ckt = parse_netlist(net);
  ckt.finalize();
  auto* v1 = dynamic_cast<VoltageSource*>(ckt.find_device("v1"));
  auto* v2 = dynamic_cast<VoltageSource*>(ckt.find_device("v2"));
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  EXPECT_NEAR(v1->waveform().value(3e-9), 1.2, 1e-9);   // flat top
  EXPECT_NEAR(v1->waveform().value(0.5e-9), 0.0, 1e-9); // before delay
  EXPECT_NEAR(v2->waveform().value(0.5e-6), 0.5, 1e-9);
  EXPECT_NEAR(v2->waveform().value(1.5e-6), 0.75, 1e-9);
}

TEST(Parser, CoupledInductorCard) {
  const std::string net = R"(
V1 in 0 DC 0 AC 1
K1 in 0 sec 0 4n 1n 0.999
RL sec 0 1meg
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e9});
  // 4:1 inductance = 2:1 voltage ratio at the open secondary.
  EXPECT_NEAR(std::abs(res.v(0, ckt.find_node("sec"))), 0.5, 0.01);
}

TEST(Parser, SubcircuitExpansion) {
  // A divider subcircuit instantiated twice; internal nodes must be
  // independent per instance.
  const std::string net = R"(
.subckt div in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 2
X1 a m div
X2 m q div
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  // X2 loads X1's output: v(m) = 2 * (1k||2k)/(1k + 1k||2k) = 0.8 V;
  // v(q) = v(m)/2 = 0.4 V.
  EXPECT_NEAR(op.v(ckt.find_node("m")), 0.8, 1e-5);
  EXPECT_NEAR(op.v(ckt.find_node("q")), 0.4, 1e-5);
}

TEST(Parser, NestedSubcircuitInstantiation) {
  // A subcircuit that instantiates another subcircuit.
  const std::string net = R"(
.subckt half in out
R1 in out 1k
R2 out 0 1k
.ends
.subckt quarter in out
X1 in mid half
X2 mid out half
.ends
V1 a 0 DC 4
XQ a b quarter
RL b 0 1e12
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  // Second divider loads the first: v(xq.mid) = 4 * (1k||2k)/(1k + 1k||2k)
  // = 1.6 V, and the unloaded output halves it to 0.8 V.
  EXPECT_NEAR(op.v(ckt.find_node("xq.mid")), 1.6, 1e-4);
  EXPECT_NEAR(op.v(ckt.find_node("b")), 0.8, 1e-4);
}

TEST(Parser, SubcircuitErrors) {
  EXPECT_THROW(parse_netlist("X1 a b nosuch\n"), ParseError);
  EXPECT_THROW(parse_netlist(".subckt s a\nR1 a 0 1k\n"), ParseError);  // no .ends
  EXPECT_THROW(parse_netlist(".ends\n"), ParseError);
  EXPECT_THROW(
      parse_netlist(".subckt s a b\nR1 a b 1k\n.ends\nV1 x 0 1\nX1 x s\n"),
      ParseError);  // port count mismatch
}

TEST(Parser, RejectsDuplicateDeviceNames) {
  try {
    parse_netlist("V1 a 0 1\nR1 a 0 1k\nR1 a 0 2k\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("duplicate device name 'r1'"), std::string::npos) << what;
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;  // first definition
  }
  // Case-insensitive: R1 and r1 are the same device.
  EXPECT_THROW(parse_netlist("R1 a 0 1k\nr1 a 0 2k\n"), ParseError);
  // Different letters are different namespaces only by spelling; V1/R1 fine.
  EXPECT_NO_THROW(parse_netlist("V1 a 0 1\nR1 a 0 1k\n"));
}

TEST(Parser, DuplicateNamesInsideSubcircuitInstances) {
  // The same subcircuit twice is fine (names get instance prefixes)...
  const std::string ok = R"(
.subckt div in out
R1 in out 1k
R2 out 0 1k
.ends
V1 a 0 DC 2
X1 a m div
X2 m q div
)";
  EXPECT_NO_THROW(parse_netlist(ok));
  // ...but two instances with the same instance name collide.
  const std::string dup = R"(
.subckt div in out
R1 in out 1k
.ends
V1 a 0 DC 2
X1 a m div
X1 m q div
)";
  EXPECT_THROW(parse_netlist(dup), ParseError);
}

TEST(Parser, RejectsDuplicateSubcircuitNames) {
  const std::string net = R"(
.subckt s a
R1 a 0 1k
.ends
.subckt s a b
R1 a b 1k
.ends
)";
  try {
    parse_netlist(net);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos) << e.what();
  }
}

TEST(Parser, MalformedNumbersCarryLineNumbers) {
  try {
    parse_netlist("V1 a 0 1\nR1 a 0 abc\n");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("malformed number"), std::string::npos) << what;
  }
}

TEST(Parser, SubcircuitGroundIsGlobal) {
  const std::string net = R"(
.subckt load in
R1 in 0 1k
.ends
V1 a 0 DC 1
X1 a load
)";
  Circuit ckt = parse_netlist(net);
  const Solution op = dc_operating_point(ckt);
  auto* v1 = dynamic_cast<VoltageSource*>(ckt.find_device("v1"));
  ASSERT_NE(v1, nullptr);
  EXPECT_NEAR(v1->current(op), -1e-3, 1e-8);  // 1 V across 1k inside the sub
}

TEST(Parser, DuplicateInsideSubcktBodyCitesSubcktName) {
  const std::string net = R"(
.subckt cell a b
R1 a b 1k
R1 b 0 2k
.ends
V1 x 0 DC 1
X1 x y cell
)";
  try {
    parse_netlist(net);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("duplicate device name 'r1' in .subckt 'cell'"),
              std::string::npos)
        << what;
  }
}

TEST(Parser, LeafSegmentTypesHierarchicalNames) {
  // A flat deck can carry elaboration-style names: the card is typed by
  // the first letter of the last '.'-separated segment, so "xe0.rsw0" is
  // a resistor even though the name starts with 'x'.
  const std::string net = R"(
V1 in 0 DC 1
xe0.rsw0 in xe0.mid 1k
xe0.rterm0 xe0.mid 0 1k
)";
  Circuit ckt = parse_netlist(net);
  EXPECT_EQ(ckt.devices().size(), 3u);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(ckt.find_node("xe0.mid")), 0.5, 1e-9);
}

}  // namespace
}  // namespace rfmix::spice
