// Periodic steady-state tests.
#include "spice/pss.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_diode.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"

namespace rfmix::spice {
namespace {

TEST(Pss, RcDrivenAtPoleMatchesAcSteadyState) {
  const double r = 1e3, c = 1e-9;
  const double f = 1.0 / (mathx::kTwoPi * r * c);  // drive exactly at the pole
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::sine(1.0, f));
  ckt.add<Resistor>("r1", in, out, r);
  ckt.add<Capacitor>("c1", out, kGround, c);

  PssOptions opts;
  opts.samples_per_period = 128;
  const PssResult res = periodic_steady_state(ckt, 1.0 / f, opts);
  ASSERT_TRUE(res.converged);
  // Amplitude at the pole is 1/sqrt(2); phase -45 deg. Check amplitude from
  // the sampled orbit.
  double vmax = -1e9, vmin = 1e9;
  for (const auto& s : res.samples) {
    vmax = std::max(vmax, s.v(out));
    vmin = std::min(vmin, s.v(out));
  }
  EXPECT_NEAR((vmax - vmin) / 2.0, 1.0 / std::sqrt(2.0), 0.01);
}

TEST(Pss, DiodeRectifierChargesToPeak) {
  // Half-wave rectifier: the hold cap settles near the peak minus a diode
  // drop, with small ripple.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  const double f = 1e6;
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::sine(2.0, f));
  ckt.add<Diode>("d1", in, out);
  ckt.add<Capacitor>("c1", out, kGround, 100e-9);
  ckt.add<Resistor>("rl", out, kGround, 100e3);

  PssOptions opts;
  opts.samples_per_period = 64;
  opts.max_periods = 2000;
  opts.tol_v = 1e-4;
  const PssResult res = periodic_steady_state(ckt, 1.0 / f, opts);
  ASSERT_TRUE(res.converged);
  double mean = 0.0;
  for (const auto& s : res.samples) mean += s.v(out);
  mean /= static_cast<double>(res.samples.size());
  EXPECT_GT(mean, 1.1);  // 2 V peak minus ~0.7 V drop, some droop
  EXPECT_LT(mean, 1.6);
}

TEST(Pss, DcCircuitConvergesImmediately) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<VoltageSource>("v1", n, kGround, Waveform::dc(1.0));
  ckt.add<Resistor>("r1", n, kGround, 1e3);
  PssOptions opts;
  opts.samples_per_period = 8;
  const PssResult res = periodic_steady_state(ckt, 1e-6, opts);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.periods_used, opts.min_periods + 1);
  for (const auto& s : res.samples) EXPECT_NEAR(s.v(n), 1.0, 1e-9);
}

TEST(Pss, ReportsNonConvergenceWhenToleranceUnreachable) {
  // An impossible tolerance exercises the best-effort return path: the
  // orbit is reported with converged=false and the achieved residual.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  const double f = 1e6;
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::sine(1.0, f, 0.5));
  ckt.add<Resistor>("r1", in, out, 1e3);
  ckt.add<Capacitor>("c1", out, kGround, 1e-9);
  PssOptions opts;
  opts.samples_per_period = 16;
  opts.max_periods = 20;
  opts.tol_v = 1e-18;  // below numerical noise: unreachable
  const PssResult res = periodic_steady_state(ckt, 1.0 / f, opts);
  EXPECT_FALSE(res.converged);
  EXPECT_EQ(res.periods_used, 20);
  EXPECT_EQ(res.samples.size(), 16u);  // best effort still returned
  EXPECT_GT(res.residual_v, 0.0);
}

TEST(Pss, ValidatesArguments) {
  Circuit ckt;
  ckt.add<Resistor>("r1", ckt.node("n"), kGround, 1e3);
  EXPECT_THROW(periodic_steady_state(ckt, -1.0, {}), std::invalid_argument);
  PssOptions bad;
  bad.samples_per_period = 2;
  EXPECT_THROW(periodic_steady_state(ckt, 1e-6, bad), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::spice
