// LTI noise analysis tests against closed-form results.
#include "spice/noise.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

using mathx::kBoltzmann;
using mathx::kT0;

TEST(Noise, SingleResistorNoiseIs4kTR) {
  // Output noise across a lone resistor: Sv = 4kTR.
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<Resistor>("r1", n, kGround, 10e3);
  // A large shunt cap far above the analysis frequency would filter; keep
  // the node purely resistive but grounded through a tiny-gmin path only.
  const Solution op = dc_operating_point(ckt);
  const NoiseResult res = noise_analysis(ckt, op, n, kGround, {1e3, 1e6});
  const double expected = 4.0 * kBoltzmann * kT0 * 10e3;
  EXPECT_NEAR(res.points[0].total_output_psd_v2_hz, expected, expected * 1e-3);
  EXPECT_NEAR(res.points[1].total_output_psd_v2_hz, expected, expected * 1e-3);
}

TEST(Noise, ParallelResistorsActAsParallelCombination) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<Resistor>("r1", n, kGround, 4e3);
  ckt.add<Resistor>("r2", n, kGround, 4e3);
  const Solution op = dc_operating_point(ckt);
  const NoiseResult res = noise_analysis(ckt, op, n, kGround, {1e6});
  const double expected = 4.0 * kBoltzmann * kT0 * 2e3;  // 4k || 4k
  EXPECT_NEAR(res.points[0].total_output_psd_v2_hz, expected, expected * 1e-3);
}

TEST(Noise, RcFilterRollsOffResistorNoise) {
  // Classic kT/C: integrated noise of RC is kT/C regardless of R; check the
  // spectral shape at the pole instead (half the flat PSD).
  Circuit ckt;
  const NodeId n = ckt.node("n");
  const double r = 100e3, c = 10e-12;
  ckt.add<Resistor>("r1", n, kGround, r);
  ckt.add<Capacitor>("c1", n, kGround, c);
  const Solution op = dc_operating_point(ckt);
  const double fc = 1.0 / (mathx::kTwoPi * r * c);
  const NoiseResult res = noise_analysis(ckt, op, n, kGround, {fc / 100.0, fc});
  const double flat = 4.0 * kBoltzmann * kT0 * r;
  EXPECT_NEAR(res.points[0].total_output_psd_v2_hz, flat, flat * 0.01);
  EXPECT_NEAR(res.points[1].total_output_psd_v2_hz, flat / 2.0, flat * 0.01);
}

TEST(Noise, ContributionsSumToTotal) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId out = ckt.node("out");
  ckt.add<Resistor>("rs", a, kGround, 1e3);
  ckt.add<Resistor>("rtop", a, out, 9e3);
  ckt.add<Resistor>("rbot", out, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  const NoiseResult res = noise_analysis(ckt, op, out, kGround, {1e5});
  double sum = 0.0;
  for (const auto& c : res.points[0].contributions) sum += c.output_psd_v2_hz;
  EXPECT_NEAR(sum, res.points[0].total_output_psd_v2_hz, sum * 1e-12);
  EXPECT_EQ(res.points[0].contributions.size(), 3u);
}

TEST(Noise, CommonSourceStageInputReferredMatchesHandAnalysis) {
  // Output noise of a CS stage: Sout = 4kT*gamma*(gm+gds)*Rout^2 (channel)
  //                                  + 4kT*RL * (RL||ro / RL)^2 ... verify
  // against the analysis' own operating point values rather than magic
  // numbers.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.6));
  const double rl = 2e3;
  ckt.add<Resistor>("rl", vdd, d, rl);
  Mosfet& m = ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  const Solution op = dc_operating_point(ckt);
  const MosOperatingPoint mop = m.evaluate(op);

  const NoiseResult res = noise_analysis(ckt, op, d, kGround, {1e8});
  // At 100 MHz flicker is negligible for this size; thermal dominates.
  const double rout = 1.0 / (1.0 / rl + mop.gds);
  const double expected_channel =
      4.0 * kBoltzmann * 300.0 * 1.0 * (std::abs(mop.gm) + std::abs(mop.gds)) * rout * rout;
  const double expected_rl = 4.0 * kBoltzmann * kT0 / rl * rout * rout;
  const double ch = res.contribution_psd(0, "m1.thermal");
  const double rln = res.contribution_psd(0, "rl.thermal");
  EXPECT_NEAR(ch, expected_channel, expected_channel * 0.05);
  EXPECT_NEAR(rln, expected_rl, expected_rl * 0.05);
}

TEST(Noise, FlickerDominatesAtLowFrequencyInMosStage) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.6));
  ckt.add<Resistor>("rl", vdd, d, 2e3);
  ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  const Solution op = dc_operating_point(ckt);
  const NoiseResult res = noise_analysis(ckt, op, d, kGround, {10.0, 1e9});
  const double flicker_low = res.contribution_psd(0, "flicker");
  const double thermal_low = res.contribution_psd(0, "thermal");
  EXPECT_GT(flicker_low, thermal_low);  // 10 Hz: flicker wins
  const double flicker_high = res.contribution_psd(1, "flicker");
  const double thermal_high = res.contribution_psd(1, "thermal");
  EXPECT_LT(flicker_high, thermal_high);  // 1 GHz: thermal wins
}

TEST(Noise, OutputDensityIsSqrtOfPsd) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<Resistor>("r1", n, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  const NoiseResult res = noise_analysis(ckt, op, n, kGround, {1e6});
  EXPECT_NEAR(res.output_density(0),
              std::sqrt(res.points[0].total_output_psd_v2_hz), 1e-18);
}

}  // namespace
}  // namespace rfmix::spice
