// Bit-exactness harness for the solver fast path (docs/solver.md): every
// engine must produce byte-identical doubles under RFMIX_SOLVER=classic
// (analyze every factorization) and RFMIX_SOLVER=reuse (analyze once,
// refactor per step, bypass unchanged devices), at any thread count. The
// comparisons here are memcmp over the raw solution vectors — not
// EXPECT_DOUBLE_EQ — because the reuse path is only trustworthy if it
// replays the exact arithmetic of the classic path, signed zeros included.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/circuits.hpp"
#include "obs/obs.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/ac.hpp"
#include "spice/dcsweep.hpp"
#include "spice/noise.hpp"
#include "spice/op.hpp"
#include "spice/pss.hpp"
#include "spice/solver.hpp"
#include "spice/tran.hpp"

namespace rfmix::spice {
namespace {

bool same_bits(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

core::MixerConfig mixer_config(core::MixerMode mode) {
  core::MixerConfig cfg;
  cfg.mode = mode;
  return cfg;
}

// Each run builds a fresh mixer: devices carry transient companion state,
// so sharing a circuit between runs would make later runs depend on
// earlier ones instead of on the solver mode under test.

std::vector<double> run_op(SolverMode mode, int threads, core::MixerMode mm) {
  ScopedSolverMode scoped(mode);
  runtime::ScopedPool pool(threads);
  auto mixer = core::build_transistor_mixer(mixer_config(mm));
  return dc_operating_point(mixer->circuit).raw();
}

std::vector<double> run_tran(SolverMode mode, int threads, core::MixerMode mm) {
  ScopedSolverMode scoped(mode);
  runtime::ScopedPool pool(threads);
  const core::MixerConfig cfg = mixer_config(mm);
  auto mixer = core::build_transistor_mixer(cfg);
  core::set_rf_stimulus(*mixer, {{2.45e9}, 5e-3});
  const double dt = 1.0 / (cfg.f_lo_hz * 16);
  const TranResult res = transient(mixer->circuit, 24 * dt, dt,
                                   {{mixer->if_p, mixer->if_m, "if"}});
  std::vector<double> bits = res.final_state.raw();
  for (const auto& w : res.waveforms) bits.insert(bits.end(), w.begin(), w.end());
  return bits;
}

std::vector<double> run_pss(SolverMode mode, int threads, core::MixerMode mm) {
  ScopedSolverMode scoped(mode);
  runtime::ScopedPool pool(threads);
  const core::MixerConfig cfg = mixer_config(mm);
  auto mixer = core::build_transistor_mixer(cfg);
  PssOptions opts;
  opts.samples_per_period = 16;
  opts.max_periods = 2;  // parity cares about the orbit bits, not convergence
  opts.min_periods = 2;
  const PssResult res = periodic_steady_state(mixer->circuit, 1.0 / cfg.f_lo_hz, opts);
  std::vector<double> bits;
  for (const auto& s : res.samples)
    bits.insert(bits.end(), s.raw().begin(), s.raw().end());
  return bits;
}

std::vector<double> run_dcsweep(SolverMode mode, int threads, core::MixerMode mm) {
  ScopedSolverMode scoped(mode);
  runtime::ScopedPool pool(threads);
  const core::MixerConfig cfg = mixer_config(mm);
  // Factory overload: chunks solve on pool lanes, so an 8-thread run
  // genuinely exercises concurrent SolverSessions. The aliasing shared_ptr
  // keeps each chunk's whole mixer alive through its Circuit handle.
  const DcSweepResult res = dc_sweep(
      [&] {
        std::shared_ptr<core::TransistorMixer> m = core::build_transistor_mixer(cfg);
        DcSweepInstance inst;
        inst.circuit = std::shared_ptr<Circuit>(m, &m->circuit);
        inst.source = m->vdd;
        return inst;
      },
      1.1, 1.3, 17);
  std::vector<double> bits = res.values;
  for (const auto& s : res.solutions)
    bits.insert(bits.end(), s.raw().begin(), s.raw().end());
  return bits;
}

using Runner = std::vector<double> (*)(SolverMode, int, core::MixerMode);

void expect_parity(Runner run, core::MixerMode mm, const char* what) {
  const std::vector<double> golden = run(SolverMode::kClassic, 1, mm);
  ASSERT_FALSE(golden.empty()) << what;
  EXPECT_TRUE(same_bits(golden, run(SolverMode::kReuse, 1, mm)))
      << what << ": reuse @1 thread deviates from classic";
  EXPECT_TRUE(same_bits(golden, run(SolverMode::kClassic, 8, mm)))
      << what << ": classic @8 threads deviates from classic @1";
  EXPECT_TRUE(same_bits(golden, run(SolverMode::kReuse, 8, mm)))
      << what << ": reuse @8 threads deviates from classic";
}

TEST(SolverParity, OperatingPointActive) {
  expect_parity(&run_op, core::MixerMode::kActive, "op/active");
}

TEST(SolverParity, OperatingPointPassive) {
  expect_parity(&run_op, core::MixerMode::kPassive, "op/passive");
}

TEST(SolverParity, TransientActive) {
  expect_parity(&run_tran, core::MixerMode::kActive, "tran/active");
}

TEST(SolverParity, TransientPassive) {
  expect_parity(&run_tran, core::MixerMode::kPassive, "tran/passive");
}

TEST(SolverParity, PeriodicSteadyStateActive) {
  expect_parity(&run_pss, core::MixerMode::kActive, "pss/active");
}

TEST(SolverParity, DcSweepActive) {
  expect_parity(&run_dcsweep, core::MixerMode::kActive, "dcsweep/active");
}

#if RFMIX_OBS_ENABLED

// The reuse mode must actually take its fast paths on these circuits —
// otherwise the parity checks above are vacuously comparing classic with
// itself.
TEST(SolverParity, ReuseModeActuallyRefactors) {
  ScopedSolverMode scoped(SolverMode::kReuse);
  const std::uint64_t refactor0 = obs::counter_value("spice.lu.refactor");
  const std::uint64_t eval0 = obs::counter_value("spice.dev.evaluated");
  const std::uint64_t analyze0 = obs::counter_value("spice.lu.analyze");
  (void)run_tran(SolverMode::kReuse, 1, core::MixerMode::kActive);
  EXPECT_GT(obs::counter_value("spice.lu.refactor"), refactor0)
      << "transient Newton never refactored";
  EXPECT_GT(obs::counter_value("spice.dev.evaluated"), eval0)
      << "batch evaluator never engaged";
  EXPECT_GT(obs::counter_value("spice.lu.analyze"), analyze0);
}

// Opt-in approximate bypass: with RFMIX_BYPASS_TOL set, devices whose
// terminal voltages moved less than the tolerance are skipped (and the
// converged solution is re-certified with one full evaluation pass — the
// bypass_recheck counter). The result leaves the bit-exactness contract,
// but must stay physically equivalent to the exact run.
TEST(SolverParity, TolBypassSkipsDevicesAndRecertifies) {
  const std::vector<double> exact = run_tran(SolverMode::kReuse, 1,
                                             core::MixerMode::kActive);
  ::setenv("RFMIX_BYPASS_TOL", "1e-7", 1);
  const std::uint64_t bypass0 = obs::counter_value("spice.dev.bypassed");
  const std::uint64_t recheck0 = obs::counter_value("spice.newton.bypass_recheck");
  const std::vector<double> relaxed = run_tran(SolverMode::kReuse, 1,
                                               core::MixerMode::kActive);
  ::unsetenv("RFMIX_BYPASS_TOL");
  EXPECT_GT(obs::counter_value("spice.dev.bypassed"), bypass0)
      << "tolerance bypass never skipped a device";
  EXPECT_GT(obs::counter_value("spice.newton.bypass_recheck"), recheck0)
      << "converged solutions were never re-certified";
  ASSERT_EQ(relaxed.size(), exact.size());
  for (std::size_t i = 0; i < exact.size(); ++i)
    EXPECT_NEAR(relaxed[i], exact[i], 1e-5) << "sample " << i;
}

TEST(SolverParity, ClassicModeNeverRefactors) {
  ScopedSolverMode scoped(SolverMode::kClassic);
  const std::uint64_t refactor0 = obs::counter_value("spice.lu.refactor");
  const std::uint64_t fact0 = obs::counter_value("spice.lu.factorizations");
  (void)run_op(SolverMode::kClassic, 1, core::MixerMode::kActive);
  EXPECT_EQ(obs::counter_value("spice.lu.refactor"), refactor0);
  EXPECT_GT(obs::counter_value("spice.lu.factorizations"), fact0);
}

#endif  // RFMIX_OBS_ENABLED

// AC and noise sweep the same factor-once machinery; their complex-valued
// results ride the same bit-exactness contract.
TEST(SolverParity, AcAndNoiseSweepsMatchAcrossModes) {
  auto run_ac_noise = [](SolverMode mode, int threads) {
    ScopedSolverMode scoped(mode);
    runtime::ScopedPool pool(threads);
    auto mixer = core::build_transistor_mixer(mixer_config(core::MixerMode::kActive));
    const Solution op = dc_operating_point(mixer->circuit);
    const std::vector<double> freqs = lin_space(1e6, 100e6, 12);
    const AcResult ac = ac_sweep(mixer->circuit, op, freqs);
    const NoiseResult noise =
        noise_analysis(mixer->circuit, op, mixer->if_p, mixer->if_m, freqs);
    std::vector<double> bits;
    for (const auto& sol : ac.solutions)
      for (const auto& v : sol) {
        bits.push_back(v.real());
        bits.push_back(v.imag());
      }
    for (const auto& p : noise.points) bits.push_back(p.total_output_psd_v2_hz);
    return bits;
  };
  const auto golden = run_ac_noise(SolverMode::kClassic, 1);
  ASSERT_FALSE(golden.empty());
  EXPECT_TRUE(same_bits(golden, run_ac_noise(SolverMode::kReuse, 1)));
  EXPECT_TRUE(same_bits(golden, run_ac_noise(SolverMode::kClassic, 8)));
  EXPECT_TRUE(same_bits(golden, run_ac_noise(SolverMode::kReuse, 8)));
}

}  // namespace
}  // namespace rfmix::spice
