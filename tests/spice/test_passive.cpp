// Passive device tests: parameter validation, switch behaviour, power.
#include "spice/devices_passive.hpp"

#include <gtest/gtest.h>

#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {
namespace {

TEST(Resistor, RejectsNonPositiveValues) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  EXPECT_THROW(ckt.add<Resistor>("r", n, kGround, 0.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Resistor>("r", n, kGround, -5.0), std::invalid_argument);
}

TEST(Resistor, SetResistanceValidates) {
  Circuit ckt;
  auto& r = ckt.add<Resistor>("r", ckt.node("n"), kGround, 100.0);
  r.set_resistance(200.0);
  EXPECT_DOUBLE_EQ(r.resistance(), 200.0);
  EXPECT_THROW(r.set_resistance(0.0), std::invalid_argument);
}

TEST(Resistor, DissipatedPowerVSquaredOverR) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<VoltageSource>("v", n, kGround, Waveform::dc(2.0));
  auto& r = ckt.add<Resistor>("r", n, kGround, 100.0);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(r.dissipated_power(op), 4.0 / 100.0, 1e-12);
}

TEST(Capacitor, RejectsNegativeValue) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Capacitor>("c", ckt.node("n"), kGround, -1e-12),
               std::invalid_argument);
}

TEST(Inductor, RejectsNonPositiveValue) {
  Circuit ckt;
  EXPECT_THROW(ckt.add<Inductor>("l", ckt.node("n"), kGround, 0.0),
               std::invalid_argument);
}

TEST(Inductor, DcActsAsShort) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("v", in, kGround, Waveform::dc(1.0));
  ckt.add<Inductor>("l", in, out, 1e-6);
  ckt.add<Resistor>("r", out, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(out), 1.0, 1e-9);
}

TEST(IdealSwitch, OnOffStatesFollowControl) {
  for (const double vctl : {0.0, 1.0}) {
    Circuit ckt;
    const NodeId in = ckt.node("in");
    const NodeId out = ckt.node("out");
    const NodeId ctl = ckt.node("ctl");
    ckt.add<VoltageSource>("v", in, kGround, Waveform::dc(1.0));
    ckt.add<VoltageSource>("vc", ctl, kGround, Waveform::dc(vctl));
    ckt.add<IdealSwitch>("s", in, out, ctl, kGround, 0.5, 10.0, 1e9);
    ckt.add<Resistor>("rl", out, kGround, 1e3);
    const Solution op = dc_operating_point(ckt);
    if (vctl > 0.5) {
      EXPECT_NEAR(op.v(out), 1e3 / (1e3 + 10.0), 1e-6);
    } else {
      EXPECT_LT(op.v(out), 1e-4);
    }
  }
}

TEST(IdealSwitch, AcUsesOperatingPointState) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  const NodeId ctl = ckt.node("ctl");
  auto& v = ckt.add<VoltageSource>("v", in, kGround, Waveform::dc(0.0));
  v.set_ac(1.0);
  ckt.add<VoltageSource>("vc", ctl, kGround, Waveform::dc(1.0));
  ckt.add<IdealSwitch>("s", in, out, ctl, kGround, 0.5, 10.0, 1e9);
  ckt.add<Resistor>("rl", out, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e6});
  EXPECT_NEAR(std::abs(res.v(0, out)), 1e3 / 1010.0, 1e-4);
}

TEST(Circuit, NodeNamesAndLookup) {
  Circuit ckt;
  const NodeId a = ckt.node("alpha");
  EXPECT_EQ(ckt.node("alpha"), a);           // idempotent
  EXPECT_EQ(ckt.find_node("alpha"), a);
  EXPECT_EQ(ckt.node("gnd"), kGround);
  EXPECT_EQ(ckt.node("0"), kGround);
  EXPECT_TRUE(ckt.has_node("alpha"));
  EXPECT_FALSE(ckt.has_node("beta"));
  EXPECT_THROW(ckt.find_node("beta"), std::invalid_argument);
  EXPECT_EQ(ckt.node_name(a), "alpha");
}

TEST(Circuit, FindDeviceByName) {
  Circuit ckt;
  ckt.add<Resistor>("r42", ckt.node("x"), kGround, 1.0);
  EXPECT_NE(ckt.find_device("r42"), nullptr);
  EXPECT_EQ(ckt.find_device("nope"), nullptr);
}

TEST(Circuit, LayoutBeforeFinalizeThrows) {
  Circuit ckt;
  ckt.add<Resistor>("r", ckt.node("x"), kGround, 1.0);
  EXPECT_THROW(ckt.layout(), std::logic_error);
  ckt.finalize();
  EXPECT_EQ(ckt.layout().num_nodes, 2);
}

}  // namespace
}  // namespace rfmix::spice
