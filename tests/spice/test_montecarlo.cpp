// Monte-Carlo mismatch and process-corner model tests.
#include "spice/montecarlo.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "spice/tech65.hpp"

namespace rfmix::spice::tech65 {
namespace {

TEST(Mismatch, SigmaScalesWithInverseSqrtArea) {
  // Pelgrom: doubling W*L shrinks sigma by sqrt(2). Estimate sigma from a
  // sample of draws at two geometries.
  auto sigma_vt = [](double w, double l, std::uint64_t seed) {
    mathx::Rng rng(seed);
    const MosParams nom = nmos(w, l);
    double s = 0.0;
    const int n = 4000;
    for (int i = 0; i < n; ++i) {
      const MosParams p = with_mismatch(nom, rng);
      const double d = p.vto - nom.vto;
      s += d * d;
    }
    return std::sqrt(s / n);
  };
  const double s_small = sigma_vt(1e-6, 65e-9, 11);
  const double s_big = sigma_vt(4e-6, 65e-9, 12);
  EXPECT_NEAR(s_small / s_big, 2.0, 0.15);  // 4x area -> 2x smaller sigma
  // Absolute anchor: 3.5 mV*um coefficient at W*L = 1um * 65nm.
  const double expected = 3.5e-9 / std::sqrt(1e-6 * 65e-9);
  EXPECT_NEAR(s_small, expected, expected * 0.1);
}

TEST(Mismatch, MeanIsUnbiased) {
  mathx::Rng rng(21);
  const MosParams nom = nmos(10e-6);
  double sum_vt = 0.0, sum_kp = 0.0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const MosParams p = with_mismatch(nom, rng);
    sum_vt += p.vto - nom.vto;
    sum_kp += p.kp / nom.kp - 1.0;
  }
  EXPECT_NEAR(sum_vt / n, 0.0, 2e-4);
  EXPECT_NEAR(sum_kp / n, 0.0, 2e-3);
}

TEST(Mismatch, DrawsAreIndependent) {
  mathx::Rng rng(31);
  const MosParams nom = nmos(10e-6);
  const MosParams a = with_mismatch(nom, rng);
  const MosParams b = with_mismatch(nom, rng);
  EXPECT_NE(a.vto, b.vto);
}

TEST(Corners, TtIsIdentity) {
  const MosParams nom = nmos(5e-6);
  const MosParams tt = at_corner(nom, Corner::kTT);
  EXPECT_DOUBLE_EQ(tt.vto, nom.vto);
  EXPECT_DOUBLE_EQ(tt.kp, nom.kp);
}

TEST(Corners, SlowFastShiftDirections) {
  const MosParams nom = nmos(5e-6);
  const MosParams ss = at_corner(nom, Corner::kSS);
  const MosParams ff = at_corner(nom, Corner::kFF);
  EXPECT_GT(ss.vto, nom.vto);  // slow: higher threshold
  EXPECT_LT(ss.kp, nom.kp);    //       less drive
  EXPECT_LT(ff.vto, nom.vto);
  EXPECT_GT(ff.kp, nom.kp);
}

TEST(Corners, CrossCornersSplitByPolarity) {
  const MosParams n = nmos(5e-6);
  const MosParams p = pmos(5e-6);
  // SF: slow NMOS, fast PMOS.
  EXPECT_GT(at_corner(n, Corner::kSF).vto, n.vto);
  EXPECT_LT(at_corner(p, Corner::kSF).vto, p.vto);
  // FS: the reverse.
  EXPECT_LT(at_corner(n, Corner::kFS).vto, n.vto);
  EXPECT_GT(at_corner(p, Corner::kFS).vto, p.vto);
}

TEST(Corners, NamesAreDistinct) {
  EXPECT_STREQ(corner_name(Corner::kTT), "TT");
  EXPECT_STREQ(corner_name(Corner::kSS), "SS");
  EXPECT_STREQ(corner_name(Corner::kFF), "FF");
  EXPECT_STREQ(corner_name(Corner::kSF), "SF");
  EXPECT_STREQ(corner_name(Corner::kFS), "FS");
}

}  // namespace
}  // namespace rfmix::spice::tech65
