// Source and waveform tests.
#include "spice/devices_sources.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/ac.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"
#include "spice/waveform.hpp"

namespace rfmix::spice {
namespace {

TEST(Waveform, DcValue) {
  const Waveform w = Waveform::dc(3.3);
  EXPECT_DOUBLE_EQ(w.value(0.0), 3.3);
  EXPECT_DOUBLE_EQ(w.value(1.0), 3.3);
  EXPECT_DOUBLE_EQ(w.dc_value(), 3.3);
}

TEST(Waveform, SineShape) {
  const Waveform w = Waveform::sine(2.0, 1e6, 0.5);
  EXPECT_NEAR(w.value(0.0), 0.5, 1e-12);                 // sin(0) = 0 + offset
  EXPECT_NEAR(w.value(0.25e-6), 2.5, 1e-9);              // quarter period peak
  EXPECT_NEAR(w.value(0.75e-6), -1.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.dc_value(), 0.5);
}

TEST(Waveform, SineDelayHoldsInitialValue) {
  const Waveform w = Waveform::sine(1.0, 1e6, 0.0, 0.0, 1e-6);
  EXPECT_NEAR(w.value(0.5e-6), 0.0, 1e-12);
  EXPECT_NEAR(w.value(1.25e-6), 1.0, 1e-9);
}

TEST(Waveform, MultiToneSumsTones) {
  MultiToneWave mt;
  mt.offset = 0.1;
  mt.tones.push_back({1.0, 1e6, mathx::kPi / 2.0});  // cos
  mt.tones.push_back({0.5, 2e6, mathx::kPi / 2.0});
  const Waveform w{mt};
  EXPECT_NEAR(w.value(0.0), 0.1 + 1.0 + 0.5, 1e-12);
}

TEST(Waveform, PulseTimings) {
  PulseWave p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay_s = 1e-9;
  p.rise_s = 1e-9;
  p.width_s = 3e-9;
  p.fall_s = 1e-9;
  p.period_s = 10e-9;
  const Waveform w{p};
  EXPECT_DOUBLE_EQ(w.value(0.0), 0.0);
  EXPECT_NEAR(w.value(1.5e-9), 0.5, 1e-9);   // mid-rise
  EXPECT_DOUBLE_EQ(w.value(3e-9), 1.0);       // flat top
  EXPECT_NEAR(w.value(5.5e-9), 0.5, 1e-9);    // mid-fall
  EXPECT_DOUBLE_EQ(w.value(8e-9), 0.0);       // low
  EXPECT_NEAR(w.value(11.5e-9), 0.5, 1e-9);   // second period mid-rise
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  PwlWave p;
  p.points = {{0.0, 0.0}, {1.0, 2.0}, {3.0, -2.0}};
  const Waveform w{p};
  EXPECT_DOUBLE_EQ(w.value(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.value(2.0), 0.0);
  EXPECT_DOUBLE_EQ(w.value(5.0), -2.0);
}

TEST(Sources, CccsMirrorsAmmeterCurrent) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::dc(1.0));
  auto& ammeter = ckt.add<VoltageSource>("vam", a, b, Waveform::dc(0.0));
  ckt.add<Resistor>("r1", b, kGround, 1e3);  // 1 mA through the ammeter
  ckt.add<Cccs>("f1", kGround, out, &ammeter, 2.0);
  ckt.add<Resistor>("rl", out, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  // Ammeter current = +1 mA (a->b). CCCS drives 2 mA from gnd to out.
  EXPECT_NEAR(op.v(out), 2.0, 1e-6);
}

TEST(Sources, CcvsProducesProportionalVoltage) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("v1", a, kGround, Waveform::dc(2.0));
  auto& ammeter = ckt.add<VoltageSource>("vam", a, b, Waveform::dc(0.0));
  ckt.add<Resistor>("r1", b, kGround, 1e3);  // 2 mA
  ckt.add<Ccvs>("h1", out, kGround, &ammeter, 500.0);
  ckt.add<Resistor>("rl", out, kGround, 1e6);
  const Solution op = dc_operating_point(ckt);
  EXPECT_NEAR(op.v(out), 1.0, 1e-6);  // 500 * 2 mA
}

TEST(Sources, ControlMustOwnBranch) {
  Circuit ckt;
  const NodeId a = ckt.node("a");
  auto& r = ckt.add<Resistor>("r1", a, kGround, 1.0);
  EXPECT_THROW(ckt.add<Cccs>("f", a, kGround, &r, 1.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Ccvs>("h", a, kGround, &r, 1.0), std::invalid_argument);
  EXPECT_THROW(ckt.add<Cccs>("f", a, kGround, nullptr, 1.0), std::invalid_argument);
}

TEST(Sources, SourceDeliversPowerNegative) {
  Circuit ckt;
  const NodeId n = ckt.node("n");
  auto& v = ckt.add<VoltageSource>("v", n, kGround, Waveform::dc(2.0));
  ckt.add<Resistor>("r", n, kGround, 100.0);
  const Solution op = dc_operating_point(ckt);
  EXPECT_LT(v.dissipated_power(op), 0.0);
  EXPECT_NEAR(v.dissipated_power(op), -0.04, 1e-9);
}

TEST(Sources, TransientSineSourceDrivesCircuit) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  ckt.add<VoltageSource>("v", in, kGround, Waveform::sine(1.0, 1e6));
  ckt.add<Resistor>("r", in, kGround, 50.0);
  const TranResult res = transient(ckt, 1e-6, 1e-9, {{in, kGround, "in"}});
  // Peak near 1.0 at quarter period.
  double peak = 0.0;
  for (const double v : res.waveform(0)) peak = std::max(peak, v);
  EXPECT_NEAR(peak, 1.0, 1e-3);
}

TEST(Sources, CccsAndCcvsInAcAnalysis) {
  // The controlled-source AC stamps must mirror the DC behaviour.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  const NodeId o1 = ckt.node("o1");
  const NodeId o2 = ckt.node("o2");
  auto& vin = ckt.add<VoltageSource>("vin", a, kGround, Waveform::dc(0.0));
  vin.set_ac(1.0);
  auto& ammeter = ckt.add<VoltageSource>("vam", a, b, Waveform::dc(0.0));
  ckt.add<Resistor>("r1", b, kGround, 1e3);  // 1 mA/V of AC drive
  ckt.add<Cccs>("f1", kGround, o1, &ammeter, 2.0);
  ckt.add<Resistor>("rl1", o1, kGround, 1e3);
  ckt.add<Ccvs>("h1", o2, kGround, &ammeter, 500.0);
  ckt.add<Resistor>("rl2", o2, kGround, 1e6);
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e6});
  EXPECT_NEAR(std::abs(res.v(0, o1)), 2.0, 1e-6);   // 2 mA into 1k
  EXPECT_NEAR(std::abs(res.v(0, o2)), 0.5, 1e-6);   // 500 * 1 mA
}

}  // namespace
}  // namespace rfmix::spice
