// AC analysis tests: RC/RL poles, resonance, controlled sources, MOS
// amplifier small-signal gain vs hand analysis.
#include "spice/ac.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

TEST(Ac, RcLowPassPole) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  const double r = 1e3, c = 1e-9;  // fc = 159 kHz
  ckt.add<Resistor>("r1", in, out, r);
  ckt.add<Capacitor>("c1", out, kGround, c);
  const Solution op = dc_operating_point(ckt);
  const double fc = 1.0 / (mathx::kTwoPi * r * c);
  const AcResult res = ac_sweep(ckt, op, {fc / 100.0, fc, fc * 100.0});

  EXPECT_NEAR(std::abs(res.v(0, out)), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(res.v(1, out)), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(res.v(2, out)), 0.01, 1e-3);
  // Phase at the pole is -45 degrees.
  EXPECT_NEAR(std::arg(res.v(1, out)), -mathx::kPi / 4.0, 1e-3);
}

TEST(Ac, RlHighPass) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  const double r = 100.0, l = 1e-6;  // fc = R/(2*pi*L) ~ 15.9 MHz
  ckt.add<Resistor>("r1", in, out, r);
  ckt.add<Inductor>("l1", out, kGround, l);
  const Solution op = dc_operating_point(ckt);
  const double fc = r / (mathx::kTwoPi * l);
  const AcResult res = ac_sweep(ckt, op, {fc / 100.0, fc, fc * 100.0});
  EXPECT_NEAR(std::abs(res.v(0, out)), 0.01, 1e-3);
  EXPECT_NEAR(std::abs(res.v(1, out)), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(res.v(2, out)), 1.0, 1e-3);
}

TEST(Ac, SeriesRlcResonance) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId a = ckt.node("a");
  const NodeId out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  const double r = 10.0, l = 100e-9, c = 100e-12;
  ckt.add<Resistor>("r1", in, a, r);
  ckt.add<Inductor>("l1", a, out, l);
  ckt.add<Capacitor>("c1", out, kGround, c);
  const Solution op = dc_operating_point(ckt);
  const double f0 = 1.0 / (mathx::kTwoPi * std::sqrt(l * c));
  const AcResult res = ac_sweep(ckt, op, {f0});
  // At resonance the L and C cancel; all drive lands across C with Q = Z0/R.
  const double q = std::sqrt(l / c) / r;
  EXPECT_NEAR(std::abs(res.v(0, out)), q, q * 0.01);
}

TEST(Ac, VcvsGain) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  ckt.add<Vcvs>("e1", out, kGround, in, kGround, -7.5);
  ckt.add<Resistor>("rl", out, kGround, 1e3);
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e6});
  EXPECT_NEAR(std::abs(res.v(0, out)), 7.5, 1e-6);
  EXPECT_NEAR(std::abs(std::arg(res.v(0, out))), mathx::kPi, 1e-6);  // inverted
}

TEST(Ac, VccsIntoLoadResistor) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  auto& vs = ckt.add<VoltageSource>("v1", in, kGround, Waveform::dc(0.0));
  vs.set_ac(1.0);
  // gm = 2 mS pulling current out of `out`: gain = -gm*RL = -4.
  ckt.add<Vccs>("g1", out, kGround, in, kGround, 2e-3);
  ckt.add<Resistor>("rl", out, kGround, 2e3);
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e6});
  EXPECT_NEAR(std::abs(res.v(0, out)), 4.0, 1e-6);
}

TEST(Ac, CommonSourceGainMatchesGmRout) {
  // Transistor-level small-signal gain must equal -gm*(RL||ro) computed from
  // the model's own operating point.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  auto& vg = ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.5));
  vg.set_ac(1.0);
  const double rl = 500.0;  // keeps the device in saturation at this bias
  ckt.add<Resistor>("rl", vdd, d, rl);
  Mosfet& m = ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  const Solution op = dc_operating_point(ckt);
  const MosOperatingPoint mop = m.evaluate(op);
  const double rout = 1.0 / (1.0 / rl + mop.gds);
  const double av_expected = mop.gm * rout;

  // Low frequency: parasitic caps negligible.
  const AcResult res = ac_sweep(ckt, op, {1e4});
  EXPECT_NEAR(std::abs(res.v(0, d)), av_expected, 0.01 * av_expected);
  EXPECT_GT(av_expected, 2.0);  // sanity: this stage actually has gain
}

TEST(Ac, GainRollsOffWithParasiticCaps) {
  // The same stage must lose gain at tens of GHz due to the MOS caps.
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId d = ckt.node("d");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  auto& vg = ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.45));
  vg.set_ac(1.0);
  ckt.add<Resistor>("rl", vdd, d, 800.0);
  ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(20e-6));
  const Solution op = dc_operating_point(ckt);
  const AcResult res = ac_sweep(ckt, op, {1e5, 5e10});
  EXPECT_GT(std::abs(res.v(0, d)), 2.0);  // real gain at low frequency
  EXPECT_LT(std::abs(res.v(1, d)), 0.5 * std::abs(res.v(0, d)));
}

TEST(Ac, FrequencyGridHelpers) {
  const auto lg = log_space(1.0, 1000.0, 4);
  ASSERT_EQ(lg.size(), 4u);
  EXPECT_NEAR(lg[0], 1.0, 1e-12);
  EXPECT_NEAR(lg[1], 10.0, 1e-9);
  EXPECT_NEAR(lg[3], 1000.0, 1e-9);
  const auto ln = lin_space(0.0, 10.0, 5);
  ASSERT_EQ(ln.size(), 5u);
  EXPECT_NEAR(ln[2], 5.0, 1e-12);
  EXPECT_EQ(log_space(5.0, 50.0, 1).size(), 1u);
}

}  // namespace
}  // namespace rfmix::spice
