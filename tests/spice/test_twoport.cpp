// Two-port S-parameter tests against closed-form networks.
#include "spice/twoport.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/op.hpp"

namespace rfmix::spice {
namespace {

TwoPortResult measure(Circuit& ckt, NodeId in, NodeId out, double f = 1e9) {
  const Solution op = dc_operating_point(ckt);
  return measure_two_port(ckt, op, {in, kGround, 50.0}, {out, kGround, 50.0}, {f});
}

TEST(TwoPort, SeriesResistor) {
  // Series R between 50-ohm ports: S11 = R/(R+2Z0), S21 = 2Z0/(R+2Z0).
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  const double r = 100.0;
  ckt.add<Resistor>("r1", in, out, r);
  const TwoPortResult res = measure(ckt, in, out);
  EXPECT_NEAR(std::abs(res.points[0].s[0][0]), r / (r + 100.0), 1e-4);
  EXPECT_NEAR(std::abs(res.points[0].s[1][0]), 100.0 / (r + 100.0), 1e-4);
}

TEST(TwoPort, ShuntResistor) {
  // Shunt R at the junction of both ports: S11 = -Z0/(2R+Z0),
  // S21 = 2R/(2R+Z0).
  Circuit ckt;
  const NodeId n = ckt.node("n");
  const double r = 100.0;
  ckt.add<Resistor>("r1", n, kGround, r);
  const TwoPortResult res = measure(ckt, n, n);
  EXPECT_NEAR(std::abs(res.points[0].s[0][0]), 50.0 / (2.0 * r + 50.0), 1e-4);
  EXPECT_NEAR(std::abs(res.points[0].s[1][0]), 2.0 * r / (2.0 * r + 50.0), 1e-4);
}

TEST(TwoPort, MatchedPiAttenuator) {
  // Classic 6 dB pi pad in 50 ohm: R_shunt = 150.48, R_series = 37.35.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<Resistor>("rp1", in, kGround, 150.48);
  ckt.add<Resistor>("rs", in, out, 37.35);
  ckt.add<Resistor>("rp2", out, kGround, 150.48);
  const TwoPortResult res = measure(ckt, in, out);
  EXPECT_LT(res.s_db(0, 0, 0), -35.0);        // matched input
  EXPECT_NEAR(res.s_db(1, 0, 0), -6.0, 0.05);  // 6 dB loss
}

TEST(TwoPort, ReciprocityOfPassiveNetwork) {
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId mid = ckt.node("mid");
  const NodeId out = ckt.node("out");
  ckt.add<Resistor>("r1", in, mid, 80.0);
  ckt.add<Capacitor>("c1", mid, kGround, 2e-12);
  ckt.add<Resistor>("r2", mid, out, 120.0);
  const TwoPortResult res = measure(ckt, in, out, 2e9);
  EXPECT_NEAR(std::abs(res.points[0].s[0][1] - res.points[0].s[1][0]), 0.0, 1e-6);
}

TEST(TwoPort, LosslessNetworkConservesPower) {
  // Series L + shunt C (lossless): |S11|^2 + |S21|^2 = 1.
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<Inductor>("l1", in, out, 3e-9);
  ckt.add<Capacitor>("c1", out, kGround, 1e-12);
  const TwoPortResult res = measure(ckt, in, out, 3e9);
  const double p = std::norm(res.points[0].s[0][0]) + std::norm(res.points[0].s[1][0]);
  EXPECT_NEAR(p, 1.0, 1e-3);
}

TEST(TwoPort, UnequalReferenceImpedances) {
  // A through connection between a 50-ohm and a 200-ohm port: the
  // well-known mismatch |S11| = |(Z2 - Z1)/(Z2 + Z1)| = 0.6.
  Circuit ckt;
  const NodeId n = ckt.node("n");
  ckt.add<Resistor>("rbig", n, kGround, 1e9);  // keep the node referenced
  const Solution op = dc_operating_point(ckt);
  const TwoPortResult res = measure_two_port(ckt, op, {n, kGround, 50.0},
                                             {n, kGround, 200.0}, {1e9});
  EXPECT_NEAR(std::abs(res.points[0].s[0][0]), 0.6, 1e-3);
  // Power conservation through the lossless junction.
  const double p = std::norm(res.points[0].s[0][0]) + std::norm(res.points[0].s[1][0]);
  EXPECT_NEAR(p, 1.0, 1e-3);
}

}  // namespace
}  // namespace rfmix::spice
