// Transient analysis tests: RC charging vs closed form, sine steady state,
// LC ring energy behaviour, trapezoidal-vs-BE accuracy ordering, adaptive
// stepping, and restart from a saved state.
#include "spice/tran.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"
#include "spice/circuit.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"

namespace rfmix::spice {
namespace {

struct RcStep {
  Circuit ckt;
  NodeId out;
  RcStep(double r, double c, double v_final) {
    const NodeId in = ckt.node("in");
    out = ckt.node("out");
    // Pulse from 0 to v_final at t=0 (fast edge).
    PulseWave pw;
    pw.v1 = 0.0;
    pw.v2 = v_final;
    pw.delay_s = 0.0;
    pw.rise_s = 1e-12;
    pw.width_s = 1.0;
    ckt.add<VoltageSource>("v1", in, kGround, Waveform(pw));
    ckt.add<Resistor>("r1", in, out, r);
    ckt.add<Capacitor>("c1", out, kGround, c);
  }
};

TEST(Tran, RcStepMatchesClosedForm) {
  const double r = 1e3, c = 1e-9, vf = 1.0;
  const double tau = r * c;
  RcStep fix(r, c, vf);
  const TranResult res =
      transient(fix.ckt, 5.0 * tau, tau / 200.0, {{fix.out, kGround, "out"}});
  for (std::size_t i = 1; i < res.time_s.size(); i += 37) {
    const double t = res.time_s[i];
    const double expected = vf * (1.0 - std::exp(-t / tau));
    EXPECT_NEAR(res.waveform(0)[i], expected, 0.01 * vf) << "t=" << t;
  }
  // Final value within 1%.
  EXPECT_NEAR(res.waveform(0).back(), vf * (1.0 - std::exp(-5.0)), 5e-3);
}

TEST(Tran, TrapezoidalBeatsBackwardEulerOnRc) {
  const double r = 1e3, c = 1e-9, vf = 1.0;
  const double tau = r * c;
  auto max_err = [&](Integrator integ) {
    RcStep fix(r, c, vf);
    TranOptions opts;
    opts.integrator = integ;
    const TranResult res =
        transient(fix.ckt, 3.0 * tau, tau / 20.0, {{fix.out, kGround, "out"}}, opts);
    double err = 0.0;
    for (std::size_t i = 1; i < res.time_s.size(); ++i) {
      const double expected = vf * (1.0 - std::exp(-res.time_s[i] / tau));
      err = std::max(err, std::abs(res.waveform(0)[i] - expected));
    }
    return err;
  };
  const double err_be = max_err(Integrator::kBackwardEuler);
  const double err_trap = max_err(Integrator::kTrapezoidal);
  EXPECT_LT(err_trap, err_be * 0.5);
}

TEST(Tran, SineSteadyStateAmplitudeAtPole) {
  // Drive the RC at its corner frequency: steady-state amplitude 1/sqrt(2).
  const double r = 1e3, c = 1e-9;
  const double fc = 1.0 / (mathx::kTwoPi * r * c);
  Circuit ckt;
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");
  ckt.add<VoltageSource>("v1", in, kGround, Waveform::sine(1.0, fc));
  ckt.add<Resistor>("r1", in, out, r);
  ckt.add<Capacitor>("c1", out, kGround, c);
  const double period = 1.0 / fc;
  const TranResult res =
      transient(ckt, 12.0 * period, period / 200.0, {{out, kGround, "out"}});
  // Amplitude over the last two periods.
  double peak = 0.0;
  const std::size_t n = res.time_s.size();
  for (std::size_t i = n - 400; i < n; ++i)
    peak = std::max(peak, std::abs(res.waveform(0)[i]));
  EXPECT_NEAR(peak, 1.0 / std::sqrt(2.0), 0.02);
}

TEST(Tran, LcRingFrequencyAndEnergy) {
  // Charged C discharging into L: rings at f0 with (trapezoidal) nearly
  // conserved amplitude.
  Circuit ckt;
  const NodeId n1 = ckt.node("n1");
  const double l = 1e-6, c = 1e-9;
  // Start via an initial current source pulse that is removed quickly.
  PulseWave kick;
  kick.v1 = 0.0;
  kick.v2 = 1e-3;
  kick.width_s = 30e-9;
  kick.rise_s = 1e-10;
  kick.fall_s = 1e-10;
  ckt.add<CurrentSource>("ikick", kGround, n1, Waveform(kick));
  ckt.add<Inductor>("l1", n1, kGround, l);
  ckt.add<Capacitor>("c1", n1, kGround, c);
  const double f0 = 1.0 / (mathx::kTwoPi * std::sqrt(l * c));
  const double period = 1.0 / f0;
  const TranResult res =
      transient(ckt, 20.0 * period, period / 400.0, {{n1, kGround, "n1"}});
  // Count zero crossings in the second half to estimate frequency.
  const auto& w = res.waveform(0);
  const std::size_t half = w.size() / 2;
  int crossings = 0;
  for (std::size_t i = half + 1; i < w.size(); ++i)
    if ((w[i - 1] < 0.0) != (w[i] < 0.0)) ++crossings;
  const double t_span = res.time_s.back() - res.time_s[half];
  const double f_est = crossings / (2.0 * t_span);
  EXPECT_NEAR(f_est, f0, 0.03 * f0);
}

TEST(Tran, RestartFromSavedStateIsSeamless) {
  const double r = 1e3, c = 1e-9, vf = 1.0;
  const double tau = r * c;
  // Run 2*tau in one shot.
  RcStep one(r, c, vf);
  const TranResult full =
      transient(one.ckt, 2.0 * tau, tau / 100.0, {{one.out, kGround, "out"}});

  // Same thing in two chained runs. The source waveform is time-shifted for
  // the second segment, but for a settled step input it is constant anyway.
  RcStep two(r, c, vf);
  const TranResult first =
      transient(two.ckt, 1.0 * tau, tau / 100.0, {{two.out, kGround, "out"}});
  TranOptions opts;
  opts.initial_state = &first.final_state;
  const TranResult second =
      transient(two.ckt, 1.0 * tau, tau / 100.0, {{two.out, kGround, "out"}}, opts);
  EXPECT_NEAR(second.waveform(0).back(), full.waveform(0).back(), 0.02 * vf);
}

TEST(Tran, AdaptiveTracksRcStep) {
  const double r = 1e3, c = 1e-9, vf = 1.0;
  const double tau = r * c;
  RcStep fix(r, c, vf);
  TranOptions opts;
  opts.adaptive = true;
  opts.lte_tol = 1e-4;
  const TranResult res =
      transient(fix.ckt, 5.0 * tau, tau / 10.0, {{fix.out, kGround, "out"}}, opts);
  ASSERT_GT(res.time_s.size(), 10u);
  for (std::size_t i = 1; i < res.time_s.size(); ++i) {
    const double expected = vf * (1.0 - std::exp(-res.time_s[i] / tau));
    EXPECT_NEAR(res.waveform(0)[i], expected, 0.03 * vf);
  }
}

TEST(Tran, MosSourceFollowerTracksSlowRamp) {
  Circuit ckt;
  const NodeId vdd = ckt.node("vdd");
  const NodeId g = ckt.node("g");
  const NodeId s = ckt.node("s");
  ckt.add<VoltageSource>("vdd", vdd, kGround, Waveform::dc(1.2));
  PwlWave ramp;
  ramp.points = {{0.0, 0.7}, {1e-6, 1.1}};
  ckt.add<VoltageSource>("vg", g, kGround, Waveform(ramp));
  ckt.add<Mosfet>("m1", vdd, g, s, kGround, tech65::nmos(20e-6));
  ckt.add<Resistor>("rs", s, kGround, 5e3);
  const TranResult res = transient(ckt, 1e-6, 1e-9, {{s, kGround, "s"}});
  // Follower output rises by roughly the gate step (within body/slope loss).
  const double rise = res.waveform(0).back() - res.waveform(0).front();
  EXPECT_GT(rise, 0.25);
  EXPECT_LT(rise, 0.45);
}

TEST(Tran, InvalidArgsThrow) {
  RcStep fix(1e3, 1e-9, 1.0);
  EXPECT_THROW(transient(fix.ckt, 0.0, 1e-9, {}), std::invalid_argument);
  EXPECT_THROW(transient(fix.ckt, 1e-6, -1.0, {}), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::spice
