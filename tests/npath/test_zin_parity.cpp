// Bit-exactness harness for the npath Zin sweep, mirroring the PR-7
// solver-parity discipline: the sweep must produce byte-identical numbers
// at any thread count and in classic vs reuse solver mode, because the
// rfmixd cache stores one payload per content key and replays it to every
// client — a single flipped mantissa bit would make a cache hit diverge
// from a fresh run.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "mathx/solver_config.hpp"
#include "npath/zin.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/ac.hpp"
#include "svc/request.hpp"

namespace rfmix::npath {
namespace {

NpathSpec parity_spec() {
  NpathSpec s;
  s.lo.phases = 4;
  s.lo.rise_frac = 0.02;
  s.lo.samples = 128;
  s.harmonics = 10;
  s.f_lo_hz = 1e9;
  s.zbb_r = 2e3;
  s.zbb_c = 25e-12;
  s.c_rf = 1e-13;
  return s;
}

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// Compare two sweeps field-by-field at the bit level (NaN-safe, -0.0
/// sensitive) — "close" is not the contract here, "identical" is.
void expect_bit_identical(const ZinSweep& a, const ZinSweep& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    ASSERT_EQ(bits(a.freqs_hz[i]), bits(b.freqs_hz[i])) << i;
    ASSERT_EQ(bits(a.points[i].zin.real()), bits(b.points[i].zin.real())) << i;
    ASSERT_EQ(bits(a.points[i].zin.imag()), bits(b.points[i].zin.imag())) << i;
    ASSERT_EQ(bits(a.points[i].s11.real()), bits(b.points[i].s11.real())) << i;
    ASSERT_EQ(bits(a.points[i].s11.imag()), bits(b.points[i].s11.imag())) << i;
    ASSERT_EQ(bits(a.points[i].rerad_minus), bits(b.points[i].rerad_minus)) << i;
    ASSERT_EQ(bits(a.points[i].rerad_plus), bits(b.points[i].rerad_plus)) << i;
    ASSERT_EQ(bits(a.points[i].rerad_3lo), bits(b.points[i].rerad_3lo)) << i;
  }
  EXPECT_EQ(bits(a.summary.f_peak_hz), bits(b.summary.f_peak_hz));
  EXPECT_EQ(bits(a.summary.zin_peak_ohm), bits(b.summary.zin_peak_ohm));
  EXPECT_EQ(bits(a.summary.zin_floor_ohm), bits(b.summary.zin_floor_ohm));
  EXPECT_EQ(bits(a.summary.bw_3db_hz), bits(b.summary.bw_3db_hz));
  EXPECT_EQ(bits(a.summary.q), bits(b.summary.q));
  EXPECT_EQ(bits(a.summary.rerad_3lo_max), bits(b.summary.rerad_3lo_max));
}

ZinSweep run(const NpathSpec& spec, int threads, mathx::SolverMode mode) {
  runtime::ScopedPool pool(threads);
  mathx::ScopedSolverMode solver(mode);
  return zin_sweep(spec, spice::lin_space(0.6e9, 1.4e9, 33));
}

TEST(NpathZinParityTest, ThreadCountDoesNotChangeBits) {
  const NpathSpec spec = parity_spec();
  const ZinSweep serial = run(spec, 1, mathx::SolverMode::kReuse);
  const ZinSweep parallel = run(spec, 8, mathx::SolverMode::kReuse);
  expect_bit_identical(serial, parallel);
}

TEST(NpathZinParityTest, ClassicAndReuseSolversAgreeBitwise) {
  const NpathSpec spec = parity_spec();
  const ZinSweep reuse = run(spec, 8, mathx::SolverMode::kReuse);
  const ZinSweep classic = run(spec, 8, mathx::SolverMode::kClassic);
  expect_bit_identical(reuse, classic);
  // And the full 2x2 grid agrees with the serial-classic reference.
  const ZinSweep ref = run(spec, 1, mathx::SolverMode::kClassic);
  expect_bit_identical(ref, reuse);
}

TEST(NpathZinParityTest, ServicePayloadBytesAreInvariant) {
  // The same invariance one layer up: the serialized npath_zin payload the
  // cache stores must be string-equal across thread counts and solver
  // modes.
  svc::Request req;
  req.kind = svc::RequestKind::kNpathZin;
  req.npath.spec = parity_spec();
  req.npath.f_start_hz = 0.8e9;
  req.npath.f_stop_hz = 1.2e9;
  req.npath.points = 17;

  std::vector<std::string> payloads;
  for (const int threads : {1, 8}) {
    for (const auto mode : {mathx::SolverMode::kClassic, mathx::SolverMode::kReuse}) {
      runtime::ScopedPool pool(threads);
      mathx::ScopedSolverMode solver(mode);
      payloads.push_back(svc::execute_request(req));
    }
  }
  for (std::size_t i = 1; i < payloads.size(); ++i)
    EXPECT_EQ(payloads[0], payloads[i]) << "variant " << i;
  EXPECT_NE(payloads[0].find("\"analysis\":\"npath_zin\""), std::string::npos);
}

}  // namespace
}  // namespace rfmix::npath
