// Multi-phase LO synthesis invariants: the non-overlap guarantee across
// the whole (phases, duty, guard, rise) grid, Fourier coefficients pinned
// against the closed-form geometric series for the ideal rectangular
// clock, and the structural properties (phase rotation, constant-sum)
// that make an N-path set an N-path set.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "npath/lo_gen.hpp"

namespace rfmix::npath {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(LoGenTest, NonOverlapAcrossSpecGrid) {
  // Every realizable spec must produce strictly non-overlapping clocks;
  // this is the property the switch quad depends on (two conducting paths
  // would short their baseband impedances together).
  for (const int phases : {2, 3, 4, 8, 16}) {
    const double full = 1.0 / phases;
    for (const double duty : {0.5 * full, 0.8 * full, full}) {
      for (const double guard : {0.0, 0.2 * duty}) {
        const double width = duty - guard;
        for (const double rise : {0.0, 0.25 * width}) {
          LoSpec spec;
          spec.phases = phases;
          spec.duty = duty;
          spec.overlap_guard = guard;
          spec.rise_frac = rise;
          spec.samples = 480;  // divisible by 2,3,4,8,16: grid-aligned edges
          ASSERT_NO_THROW(validate(spec));
          const auto waves = lo_waveforms(spec, 0.0, 1.0);
          ASSERT_EQ(waves.size(), static_cast<std::size_t>(phases));
          // Threshold at half swing: ramps may coexist below it at full
          // duty, but two phases must never conduct hard simultaneously.
          EXPECT_TRUE(non_overlapping(waves, 0.5))
              << "phases=" << phases << " duty=" << duty << " guard=" << guard
              << " rise=" << rise;
        }
      }
    }
  }
}

TEST(LoGenTest, IdealClockIsTwoLevel) {
  LoSpec spec;  // defaults: 4 phases, 25% duty, no ramps
  const auto waves = lo_waveforms(spec, 0.0, 1.0);
  for (const auto& w : waves) {
    int on = 0;
    for (const double v : w) {
      EXPECT_TRUE(v == 0.0 || v == 1.0);
      if (v == 1.0) ++on;
    }
    // Exactly duty * samples samples conduct.
    EXPECT_EQ(on, 64);
  }
}

TEST(LoGenTest, FourierMatchesClosedFormForIdealQuadratureClock) {
  // For the ideal (rectangular) 25%-duty 4-phase clock with M = 256 and
  // phase i starting at sample n0 = 64 i with L = 64 ON samples, the DFT
  // coefficient is a finite geometric series:
  //   W_m = (1/M) e^{-j 2 pi m n0 / M} (1 - e^{-j 2 pi m L / M})
  //                                    / (1 - e^{-j 2 pi m / M}),
  // and W_0 = L/M = duty.
  LoSpec spec;
  spec.samples = 256;
  const int big_m = spec.samples;
  const int len = 64;
  const auto waves = lo_waveforms(spec, 0.0, 1.0);
  for (int phase = 0; phase < spec.phases; ++phase) {
    const int n0 = 64 * phase;
    for (int m = 0; m <= 9; ++m) {
      const std::complex<double> got = fourier_coeff(waves[std::size_t(phase)], m);
      std::complex<double> want;
      if (m == 0) {
        want = double(len) / big_m;
      } else {
        const auto ej = [&](double k) {
          const double theta = -2.0 * kPi * m * k / big_m;
          return std::complex<double>(std::cos(theta), std::sin(theta));
        };
        want = ej(n0) * (1.0 - ej(len)) / (1.0 - ej(1)) / double(big_m);
      }
      EXPECT_NEAR(std::abs(got - want), 0.0, 1e-12)
          << "phase=" << phase << " m=" << m;
    }
  }
}

TEST(LoGenTest, FourierFundamentalMagnitudeIsSincOfDuty) {
  // |W_1| for an ideal duty-D clock approaches D*sinc(pi D) = sin(pi D)/pi
  // as the sampling gets fine; at M = 2048 the discrete sum is within a
  // part in 1e3 of the continuous value.
  for (const int phases : {4, 8}) {
    LoSpec spec;
    spec.phases = phases;
    spec.duty = 1.0 / phases;
    spec.samples = 2048;
    const auto w = phase_wave(spec, 0, 0.0, 1.0);
    const double got = std::abs(fourier_coeff(w, 1));
    const double want = std::sin(kPi * spec.duty) / kPi;
    EXPECT_NEAR(got, want, 1e-3 * want) << "phases=" << phases;
  }
}

TEST(LoGenTest, PhaseRotationIsExactSampleShift) {
  // Phase i is phase 0 delayed by i/N of a period. With samples divisible
  // by phases the shift lands on the grid, so the rotation is bitwise.
  // Guard and rise are dyadic fractions (1/64, 1/32) so every intermediate
  // (start offset, wrapped position, ramp ratio) is exact in binary.
  LoSpec spec;
  spec.rise_frac = 0.03125;
  spec.overlap_guard = 0.015625;
  const auto waves = lo_waveforms(spec, 0.0, 2.5);
  const int shift = spec.samples / spec.phases;
  for (int p = 1; p < spec.phases; ++p) {
    for (int i = 0; i < spec.samples; ++i) {
      const int j = (i + p * shift) % spec.samples;
      ASSERT_EQ(waves[std::size_t(p)][std::size_t(j)], waves[0][std::size_t(i)])
          << "phase=" << p << " sample=" << i;
    }
  }
}

TEST(LoGenTest, FullDutyIdealSetSumsToConstant) {
  // duty = 1/N with no guard and no ramps tiles the period exactly: at
  // every instant exactly one switch conducts, so the sum of all phase
  // conductances is the flat line g_on.
  for (const int phases : {2, 4, 8}) {
    LoSpec spec;
    spec.phases = phases;
    spec.duty = 1.0 / phases;
    spec.samples = 256;
    const auto waves = lo_waveforms(spec, 0.0, 0.1);
    for (int i = 0; i < spec.samples; ++i) {
      double sum = 0.0;
      for (const auto& w : waves) sum += w[std::size_t(i)];
      ASSERT_DOUBLE_EQ(sum, 0.1) << "phases=" << phases << " sample=" << i;
    }
  }
}

TEST(LoGenTest, ValidateRejectsUnrealizableSpecs) {
  const auto reject = [](LoSpec s) { EXPECT_THROW(validate(s), std::invalid_argument); };
  LoSpec s;
  s.phases = 1;
  reject(s);  // too few phases
  s = LoSpec{};
  s.phases = 65;
  reject(s);  // too many phases
  s = LoSpec{};
  s.duty = 0.3;
  reject(s);  // 4 * 0.3 > 1: overlapping windows
  s = LoSpec{};
  s.duty = 0.0;
  reject(s);  // no ON window at all
  s = LoSpec{};
  s.overlap_guard = 0.25;
  reject(s);  // guard swallows the window
  s = LoSpec{};
  s.rise_frac = 0.15;
  reject(s);  // 2*rise > duty: edges collide
  s = LoSpec{};
  s.samples = 4;
  reject(s);  // under-resolved
  s = LoSpec{};
  s.rise_frac = -0.01;
  reject(s);
  // And the boundary case that must pass: full duty, edges exactly filling
  // the window.
  s = LoSpec{};
  s.duty = 0.25;
  s.rise_frac = 0.125;
  EXPECT_NO_THROW(validate(s));
}

TEST(LoGenTest, PhaseWaveRejectsOutOfRangePhase) {
  LoSpec spec;
  EXPECT_THROW(phase_wave(spec, -1, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(phase_wave(spec, 4, 0.0, 1.0), std::invalid_argument);
}

TEST(LoGenTest, DcCoefficientEqualsDutyWithRamps) {
  // The trapezoid loses on one edge exactly what it gains on the other, so
  // the mean stays at width-centred duty independent of rise_frac (for
  // grid-aligned edges).
  LoSpec spec;
  spec.samples = 1024;
  spec.rise_frac = 0.0625;  // 64 samples per edge
  const auto w = phase_wave(spec, 0, 0.0, 1.0);
  const std::complex<double> dc = fourier_coeff(w, 0);
  EXPECT_NEAR(dc.real(), spec.duty - spec.rise_frac, 1e-3);
  EXPECT_NEAR(dc.imag(), 0.0, 1e-15);
}

}  // namespace
}  // namespace rfmix::npath
