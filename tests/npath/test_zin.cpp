// Mixer-first Zin/S11 physics: the translated-impedance peak must sit at
// f_LO and move with it, bandwidth must be set by the baseband pole (so Q
// rises with Zbb resistance), switch Ron must degrade the out-of-band
// floor, S11 must dip at the match, and the 8-phase clock set must cancel
// the 3 f_LO re-radiation that the 4-phase set emits.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <stdexcept>
#include <vector>

#include "npath/zin.hpp"
#include "spice/ac.hpp"

namespace rfmix::npath {
namespace {

/// Small, fast default front end for the physics checks: 4 phases at 25%
/// duty, modest resolution (K = 8 sidebands needs >= 34 samples).
NpathSpec small_spec() {
  NpathSpec s;
  s.lo.samples = 64;
  s.harmonics = 8;
  s.f_lo_hz = 1e9;
  s.switch_ron = 10.0;
  s.zbb_r = 1e3;
  return s;
}

TEST(NpathZinTest, PeakTracksLoFrequency) {
  for (const double f_lo : {0.8e9, 1.0e9, 1.3e9}) {
    NpathSpec s = small_spec();
    s.f_lo_hz = f_lo;
    s.zbb_c = 40e-12;  // sharpen the peak so argmax is unambiguous
    const ZinSweep sw =
        zin_sweep(s, spice::lin_space(0.5 * f_lo, 1.5 * f_lo, 41));
    // The translated-impedance resonance sits at f_LO: the argmax of |Zin|
    // must land within one grid step (f_lo/40) of it.
    EXPECT_NEAR(sw.summary.f_peak_hz, f_lo, 1.05 * f_lo / 40.0) << "f_lo=" << f_lo;
    // And the peak towers over the floor — this is a bandpass, not a ripple.
    EXPECT_GT(sw.summary.zin_peak_ohm, 3.0 * sw.summary.zin_floor_ohm);
  }
}

TEST(NpathZinTest, QIncreasesWithBasebandResistance) {
  // The RF bandwidth is the translated baseband pole: BW ~ 1/(R_eff C), so
  // raising zbb_r (with the 1/(N duty) source-side contribution fixed)
  // narrows the peak and raises Q monotonically.
  std::vector<double> q;
  for (const double rb : {200.0, 1000.0, 5000.0}) {
    NpathSpec s = small_spec();
    s.zbb_r = rb;
    s.zbb_c = 40e-12;
    const ZinSweep sw = zin_sweep(s, spice::lin_space(0.7e9, 1.3e9, 121));
    ASSERT_GT(sw.summary.bw_3db_hz, 0.0) << "rb=" << rb;
    ASSERT_GT(sw.summary.q, 0.0) << "rb=" << rb;
    q.push_back(sw.summary.q);
  }
  EXPECT_GT(q[1], q[0]);
  EXPECT_GT(q[2], q[1]);
}

TEST(NpathZinTest, SwitchRonSetsOutOfBandFloorAndDegradesContrast) {
  // Far from f_LO the paths look like Ron in series with the (shorted-out)
  // baseband, so the floor tracks Ron; in-band the peak-to-floor contrast
  // shrinks as Ron grows.
  double prev_floor = -1.0, prev_contrast = 1e300;
  for (const double ron : {2.0, 10.0, 50.0}) {
    NpathSpec s = small_spec();
    s.switch_ron = ron;
    s.zbb_c = 40e-12;
    const ZinSweep sw = zin_sweep(s, spice::lin_space(0.5e9, 1.5e9, 41));
    EXPECT_GT(sw.summary.zin_floor_ohm, prev_floor) << "ron=" << ron;
    const double contrast = sw.summary.zin_peak_ohm / sw.summary.zin_floor_ohm;
    EXPECT_LT(contrast, prev_contrast) << "ron=" << ron;
    prev_floor = sw.summary.zin_floor_ohm;
    prev_contrast = contrast;
  }
}

TEST(NpathZinTest, S11DipsAtTheTranslatedResonance) {
  // Pick Zbb (R || C) so the translated impedance lands near 50 ohm at
  // f_LO: the reflection coefficient must dip there, while off-band the
  // baseband cap shorts the paths down to Ron and the match is poor. A
  // purely resistive baseband would match broadband — the localized dip
  // IS the N-path selectivity.
  NpathSpec s = small_spec();
  s.zbb_r = 200.0;
  s.zbb_c = 40e-12;
  const ZinSweep sw = zin_sweep(s, spice::lin_space(0.5e9, 1.5e9, 101));
  std::size_t best = 0;
  for (std::size_t i = 1; i < sw.points.size(); ++i)
    if (std::abs(sw.points[i].s11) < std::abs(sw.points[best].s11)) best = i;
  EXPECT_NEAR(sw.freqs_hz[best], s.f_lo_hz, 0.05 * s.f_lo_hz);
  const double dip = std::abs(sw.points[best].s11);
  const double edge = std::abs(sw.points.front().s11);
  EXPECT_LT(dip, edge - 0.2);
}

TEST(NpathZinTest, EightPhaseCancelsThirdHarmonicReradiation) {
  // The N-path selection rule: N identical phase-shifted paths re-radiate
  // only at sidebands k = multiples of +-N. A tone near f_LO therefore
  // re-emits near 3 f_LO through a 4-phase set (k = -4 lands at |f - 4
  // f_LO| ~ 3 f_LO) but NOT through an 8-phase one — the harmonic-
  // rejection argument for more phases.
  NpathSpec s4 = small_spec();
  const ZinSweep sw4 = zin_sweep(s4, spice::lin_space(0.9e9, 1.1e9, 11));

  NpathSpec s8 = small_spec();
  s8.lo.phases = 8;
  s8.lo.duty = 0.125;
  s8.harmonics = 9;  // must retain the +-8 sidebands
  s8.lo.samples = 64;
  const ZinSweep sw8 = zin_sweep(s8, spice::lin_space(0.9e9, 1.1e9, 11));

  EXPECT_GT(sw4.summary.rerad_3lo_max, 1e-3);
  EXPECT_LT(sw8.summary.rerad_3lo_max, 1e-6);
  // The +-N re-radiation pair itself is nonzero for both sets (it moved to
  // 7/9 f_LO for N = 8, it did not disappear).
  EXPECT_GT(sw4.points[5].rerad_minus, 0.0);
  EXPECT_GT(sw8.points[5].rerad_minus, 0.0);
}

TEST(NpathZinTest, ZinIsPassiveAndReciprocalInMagnitude) {
  // A passive network: Re(Zin) > 0 and |S11| <= 1 at every point.
  NpathSpec s = small_spec();
  s.zbb_c = 20e-12;
  const ZinSweep sw = zin_sweep(s, spice::lin_space(0.3e9, 2.0e9, 35));
  for (const ZinPoint& pt : sw.points) {
    EXPECT_GT(pt.zin.real(), 0.0) << "f=" << pt.f_hz;
    EXPECT_LE(std::abs(pt.s11), 1.0 + 1e-9) << "f=" << pt.f_hz;
  }
}

TEST(NpathZinTest, ValidateRejectsUnderResolvedSpecs) {
  NpathSpec s = small_spec();
  s.harmonics = 4;  // < phases + 1: would drop the +-N sidebands
  EXPECT_THROW(validate(s), std::invalid_argument);
  s = small_spec();
  s.lo.samples = 32;  // < 4K + 2
  EXPECT_THROW(validate(s), std::invalid_argument);
  s = small_spec();
  s.harmonics = 65;
  EXPECT_THROW(validate(s), std::invalid_argument);
  s = small_spec();
  s.switch_ron = 0.0;
  EXPECT_THROW(validate(s), std::invalid_argument);
  s = small_spec();
  s.f_lo_hz = -1e9;
  EXPECT_THROW(validate(s), std::invalid_argument);
  s = small_spec();
  s.zbb_c = -1e-12;
  EXPECT_THROW(validate(s), std::invalid_argument);
}

TEST(NpathZinTest, CircuitShapeMatchesSpec) {
  const NpathSpec s = small_spec();
  const NpathCircuit nc = build_npath_circuit(s);
  EXPECT_EQ(nc.bb.size(), 4u);
  // Ground + RF + one baseband node per path.
  EXPECT_EQ(nc.ckt.num_nodes(), 6);
}

}  // namespace
}  // namespace rfmix::npath
