// Friis cascade and sensitivity tests against hand-computed references.
#include "frontend/cascade.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "mathx/units.hpp"

namespace rfmix::frontend {
namespace {

TEST(Cascade, SingleStagePassesThrough) {
  const CascadeResult r = cascade({{"amp", 15.0, 4.0, 2.0}});
  EXPECT_NEAR(r.gain_db, 15.0, 1e-9);
  EXPECT_NEAR(r.nf_db, 4.0, 1e-9);
  EXPECT_NEAR(r.iip3_dbm, 2.0, 1e-9);
}

TEST(Cascade, FriisTwoStageHandComputed) {
  // F = F1 + (F2-1)/G1 with F1 = 2 (3.01 dB), G1 = 10, F2 = 10 (10 dB):
  // F = 2 + 9/10 = 2.9 -> 4.624 dB.
  const CascadeResult r =
      cascade({{"lna", 10.0, 3.0103, kLinearStage}, {"mixer", 10.0, 10.0, kLinearStage}});
  EXPECT_NEAR(r.nf_db, 4.624, 0.01);
  EXPECT_NEAR(r.gain_db, 20.0, 1e-9);
}

TEST(Cascade, FrontStageGainSuppressesBackendNoise) {
  // Raising the LNA gain must improve total NF monotonically.
  auto nf_with_lna_gain = [](double g) {
    return cascade({{"lna", g, 3.0, kLinearStage}, {"mixer", 10.0, 10.2, kLinearStage}})
        .nf_db;
  };
  EXPECT_GT(nf_with_lna_gain(5.0), nf_with_lna_gain(15.0));
  EXPECT_GT(nf_with_lna_gain(15.0), nf_with_lna_gain(25.0));
}

TEST(Cascade, Iip3ReferredThroughFrontGain) {
  // Only the last stage distorts: chain IIP3 = stage IIP3 - front gain.
  const CascadeResult r =
      cascade({{"lna", 12.0, 3.0, kLinearStage}, {"mixer", 10.0, 10.0, -5.0}});
  EXPECT_NEAR(r.iip3_dbm, -17.0, 0.01);
}

TEST(Cascade, Iip3CombinesTwoNonlinearStages) {
  // Equal referred contributions: 3 dB worse than either alone.
  const CascadeResult r =
      cascade({{"a", 0.0, 3.0, 0.0}, {"b", 0.0, 3.0, 0.0}});
  EXPECT_NEAR(r.iip3_dbm, -3.01, 0.02);
}

TEST(Cascade, LossyFirstStageAddsItsLossToNf) {
  // A passive attenuator with NF = loss in front: NF adds directly.
  const CascadeResult r =
      cascade({{"balun", -1.0, 1.0, kLinearStage}, {"lna", 15.0, 3.0, kLinearStage}});
  EXPECT_NEAR(r.nf_db, 4.0, 0.15);
}

TEST(Cascade, PerStageBookkeeping) {
  const CascadeResult r = cascade(
      {{"balun", -1.0, 1.0, kLinearStage}, {"lna", 12.0, 3.0, 0.0},
       {"mixer", 25.5, 10.2, 6.57}});
  ASSERT_EQ(r.per_stage.size(), 3u);
  EXPECT_EQ(r.per_stage[0].name, "balun");
  EXPECT_NEAR(r.per_stage[1].cumulative_gain_db, 11.0, 1e-9);
  EXPECT_NEAR(r.per_stage[2].cumulative_gain_db, 36.5, 1e-9);
  EXPECT_EQ(r.per_stage[2].cumulative_nf_db, r.nf_db);
}

TEST(Cascade, EmptyThrows) { EXPECT_THROW(cascade({}), std::invalid_argument); }

TEST(Sensitivity, ZigbeeStyleBudget) {
  // NF 19 dB, BW 2 MHz, SNR 5 dB: -174 + 19 + 63 + 5 = -87 dBm.
  EXPECT_NEAR(sensitivity_dbm(19.0, 2e6, 5.0), -87.0, 0.1);
}

TEST(Sensitivity, ImprovesWithLowerNf) {
  EXPECT_LT(sensitivity_dbm(5.0, 1e6, 8.0), sensitivity_dbm(15.0, 1e6, 8.0));
}

TEST(Sensitivity, InvalidBandwidthThrows) {
  EXPECT_THROW(sensitivity_dbm(5.0, 0.0, 8.0), std::invalid_argument);
}

}  // namespace
}  // namespace rfmix::frontend
