// Mode-selection planner tests: the paper's Fig. 1 trade-off automated.
#include "frontend/planner.hpp"

#include <gtest/gtest.h>

#include "frontend/standards.hpp"

namespace rfmix::frontend {
namespace {

MixerModePerf paper_active() { return {29.2, 7.6, -11.9, 9.36}; }
MixerModePerf paper_passive() { return {25.5, 10.2, 6.57, 9.24}; }

WirelessStandard relaxed_standard() {
  WirelessStandard s;
  s.name = "relaxed";
  s.nf_budget_db = 25.0;
  s.iip3_budget_dbm = -40.0;
  return s;
}

TEST(Planner, LinearityDrivenStandardPicksPassive) {
  // Tight IIP3 budget that only the passive chain can meet.
  WirelessStandard s = relaxed_standard();
  s.iip3_budget_dbm = -20.0;
  const ModeDecision d =
      choose_mixer_mode(s, FrontEndSpec{}, paper_active(), paper_passive());
  EXPECT_EQ(d.mode, MixerMode::kPassive);
  EXPECT_TRUE(d.feasible);
  EXPECT_GE(d.iip3_margin_db, 0.0);
}

TEST(Planner, NoiseDrivenStandardPicksActive) {
  // NF budget between the two chains' noise figures with easy linearity:
  // only the active chain (lower NF) passes.
  WirelessStandard s = relaxed_standard();
  s.nf_budget_db = 4.9;
  s.iip3_budget_dbm = -45.0;
  const ModeDecision d =
      choose_mixer_mode(s, FrontEndSpec{}, paper_active(), paper_passive());
  EXPECT_EQ(d.mode, MixerMode::kActive);
  EXPECT_TRUE(d.feasible);
}

TEST(Planner, BothPassPrefersLowerPower) {
  WirelessStandard s = relaxed_standard();
  MixerModePerf cheap_passive = paper_passive();
  cheap_passive.power_mw = 5.0;
  const ModeDecision d =
      choose_mixer_mode(s, FrontEndSpec{}, paper_active(), cheap_passive);
  EXPECT_EQ(d.mode, MixerMode::kPassive);
  EXPECT_NE(d.rationale.find("power"), std::string::npos);
}

TEST(Planner, InfeasibleStandardReported) {
  WirelessStandard s = relaxed_standard();
  s.nf_budget_db = 0.5;  // impossible
  const ModeDecision d =
      choose_mixer_mode(s, FrontEndSpec{}, paper_active(), paper_passive());
  EXPECT_FALSE(d.feasible);
  EXPECT_LT(d.nf_margin_db, 0.0);
}

TEST(Planner, ChainIncludesFrontEndStages) {
  const ModeDecision d = choose_mixer_mode(relaxed_standard(), FrontEndSpec{},
                                           paper_active(), paper_passive());
  ASSERT_EQ(d.chain.per_stage.size(), 3u);
  EXPECT_EQ(d.chain.per_stage.back().name, "mixer");
}

TEST(Standards, CatalogCoversIotModes) {
  const auto cat = standard_catalog();
  ASSERT_GE(cat.size(), 5u);
  EXPECT_NO_THROW(find_standard(cat, "zigbee-2450"));
  EXPECT_NO_THROW(find_standard(cat, "wifi-11g-54"));
  EXPECT_NO_THROW(find_standard(cat, "uwb-band3"));
  EXPECT_THROW(find_standard(cat, "lte"), std::invalid_argument);
}

TEST(Standards, FieldsArePhysical) {
  for (const auto& s : standard_catalog()) {
    EXPECT_GT(s.f_center_hz, 0.1e9) << s.name;
    EXPECT_GT(s.channel_bw_hz, 0.0) << s.name;
    EXPECT_LT(s.sensitivity_dbm, -40.0) << s.name;
    EXPECT_GT(s.nf_budget_db, 0.0) << s.name;
  }
}

TEST(Standards, EveryStandardGetsADecision) {
  // The planner must produce a decision (feasible or not) for the whole
  // catalog without throwing — the multistandard example depends on this.
  for (const auto& s : standard_catalog()) {
    const ModeDecision d =
        choose_mixer_mode(s, FrontEndSpec{}, paper_active(), paper_passive());
    EXPECT_FALSE(d.rationale.empty()) << s.name;
  }
}

}  // namespace
}  // namespace rfmix::frontend
