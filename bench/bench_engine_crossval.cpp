// Engine cross-validation: conversion gain of the SAME design point from
// all four engines, both modes. This is the repo's credibility table —
// four independent computational paths (calibrated behavioral model,
// hand-built LPTV element model, PSS+PAC of the transistor netlist, and
// transient+FFT of the transistor netlist) must tell one coherent story.
#include <iostream>

#include "core/behavioral.hpp"
#include "core/circuits.hpp"
#include "core/lptv_model.hpp"
#include "core/measurements.hpp"
#include "core/pac_transistor.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_engine_crossval");
  std::ostream& out = cli.out();
  out << "=== Engine cross-validation: conversion gain @ 2.405 GHz RF, 5 MHz IF ===\n\n";

  rf::ConsoleTable table({"Engine", "Active (dB)", "Passive (dB)", "independent of"});
  double beh[2], lptv[2], pac[2], tran[2];
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const int i = mode == MixerMode::kActive ? 0 : 1;
    MixerConfig cfg;
    cfg.mode = mode;
    beh[i] = core::BehavioralMixer(cfg).conversion_gain_db(2.405e9);
    lptv[i] = core::lptv_conversion_gain_db(cfg, 5e6);
    pac[i] = core::pac_conversion_gain(cfg, 5e6).conversion_gain_db;

    MixerConfig tcfg = cfg;
    tcfg.rf_series_r = 50.0;  // match the PAC harness's port
    auto mixer = core::build_transistor_mixer(tcfg);
    core::TransientMeasureOptions topt;
    topt.grid_hz = 1e6;
    topt.grid_periods = 1;
    topt.settle_periods = 0.4;
    topt.samples_per_lo = 20;
    tran[i] = core::measure_conversion_gain_db(*mixer, 5e6, 2e-3, topt);
  }
  table.add_row({"behavioral (paper-calibrated)", rf::ConsoleTable::num(beh[0], 2),
                 rf::ConsoleTable::num(beh[1], 2), "device models"});
  table.add_row({"LPTV element model", rf::ConsoleTable::num(lptv[0], 2),
                 rf::ConsoleTable::num(lptv[1], 2), "paper numbers"});
  table.add_row({"PSS+PAC (transistor netlist)", rf::ConsoleTable::num(pac[0], 2),
                 rf::ConsoleTable::num(pac[1], 2), "hand modeling"});
  table.add_row({"transient+FFT (transistor)", rf::ConsoleTable::num(tran[0], 2),
                 rf::ConsoleTable::num(tran[1], 2), "linearization"});
  table.print(out);

  out << "\nConsistency checks:\n";
  out << "  PAC vs transient (same netlist): active "
            << rf::ConsoleTable::num(std::abs(pac[0] - tran[0]), 2) << " dB, passive "
            << rf::ConsoleTable::num(std::abs(pac[1] - tran[1]), 2) << " dB apart\n";
  out << "  every engine orders active > passive: "
            << ((beh[0] > beh[1] && lptv[0] > lptv[1] && pac[0] > pac[1] &&
                 tran[0] > tran[1])
                    ? "yes"
                    : "NO")
            << "\n";
  // NF cross-check: behavioral / LPTV / transistor PNOISE.
  out << "\nDSB noise figure @ 5 MHz IF:\n";
  rf::ConsoleTable nft({"Engine", "Active (dB)", "Passive (dB)"});
  double nfb[2], nfl[2], nfp[2];
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    const int i = mode == MixerMode::kActive ? 0 : 1;
    MixerConfig cfg;
    cfg.mode = mode;
    nfb[i] = core::BehavioralMixer(cfg).nf_dsb_db(5e6);
    nfl[i] = core::lptv_nf_dsb(cfg, 5e6).nf_dsb_db;
    nfp[i] = core::pac_nf_dsb(cfg, 5e6).nf_dsb_db;
  }
  nft.add_row({"behavioral (paper-calibrated)", rf::ConsoleTable::num(nfb[0], 2),
               rf::ConsoleTable::num(nfb[1], 2)});
  nft.add_row({"LPTV element model", rf::ConsoleTable::num(nfl[0], 2),
               rf::ConsoleTable::num(nfl[1], 2)});
  nft.add_row({"PNOISE (transistor netlist)", rf::ConsoleTable::num(nfp[0], 2),
               rf::ConsoleTable::num(nfp[1], 2)});
  nft.print(out);
  out << "  (the transistor netlist's NF excludes TIA op-amp and bias-source\n"
               "   noise — those elements are noiseless macromodels there — so it reads\n"
               "   a few dB better; the active < passive ordering holds everywhere)\n";

  out << "\nThe transistor engines sit below the paper-calibrated pair in passive\n"
               "mode because the re-designed netlist splits its gain differently\n"
               "(EXPERIMENTS.md, known deviation 1); within each pair the agreement is\n"
               "sub-dB, which is the claim that matters: the analyses are sound.\n";
  return cli.finish();
}
