// FIG9: DSB noise figure and conversion gain vs IF frequency (paper Fig. 9),
// RF anchored at 2.45 GHz.
//
// Paper anchors: NF = 7.6 dB (active) / 10.2 dB (passive) at 5 MHz IF;
// passive-mode flicker corner < 100 kHz (section III).
#include <iostream>
#include <string>

#include "core/behavioral.hpp"
#include "core/lptv_model.hpp"
#include "mathx/interp.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::BehavioralMixer;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_fig9_nf_vs_if");
  std::ostream& out = cli.out();
  const bool csv = cli.csv();
  if (!csv) out << "=== FIG9: DSB NF and conversion gain vs IF frequency (RF = 2.45 GHz) ===\n\n";

  MixerConfig active;
  active.mode = MixerMode::kActive;
  active.f_lo_hz = 2.445e9;  // keeps RF = f_lo + f_if near 2.45 GHz
  MixerConfig passive = active;
  passive.mode = MixerMode::kPassive;
  const BehavioralMixer beh_active(active);
  const BehavioralMixer beh_passive(passive);

  rf::ConsoleTable table({"IF (kHz)", "act NF beh", "act NF lptv", "act gain lptv",
                          "pas NF beh", "pas NF lptv", "pas gain lptv"});

  const std::vector<double> ifs = {10e3,  20e3,  50e3,  100e3, 200e3, 500e3, 1e6,
                                   2e6,   5e6,   10e6,  20e6,  50e6};
  // Both mode sweeps run their IF points concurrently on the runtime pool;
  // results are bit-identical to the former per-point loop.
  const std::vector<core::LptvNfPoint> pts_a = core::lptv_nf_sweep(active, ifs);
  const std::vector<core::LptvNfPoint> pts_p = core::lptv_nf_sweep(passive, ifs);
  std::vector<double> nf_a, nf_p;
  for (std::size_t i = 0; i < ifs.size(); ++i) {
    const double fif = ifs[i];
    const core::LptvNfPoint& a = pts_a[i];
    const core::LptvNfPoint& p = pts_p[i];
    nf_a.push_back(a.nf_dsb_db);
    nf_p.push_back(p.nf_dsb_db);
    table.add_row({rf::ConsoleTable::num(fif / 1e3, 0),
                   rf::ConsoleTable::num(beh_active.nf_dsb_db(fif), 2),
                   rf::ConsoleTable::num(a.nf_dsb_db, 2),
                   rf::ConsoleTable::num(a.gain_db, 2),
                   rf::ConsoleTable::num(beh_passive.nf_dsb_db(fif), 2),
                   rf::ConsoleTable::num(p.nf_dsb_db, 2),
                   rf::ConsoleTable::num(p.gain_db, 2)});
  }
  if (csv) {
    table.print_csv(out);
    return cli.finish();
  }
  table.print(out);

  // Flicker corner: IF where NF has risen 3 dB above its white floor.
  auto corner = [&](const std::vector<double>& nf) {
    const double floor_db = nf[nf.size() - 2];  // 20 MHz point ~ white floor
    std::vector<double> rev_f(ifs.rbegin(), ifs.rend());
    std::vector<double> rev_nf(nf.rbegin(), nf.rend());
    return mathx::first_crossing(rev_f, rev_nf, floor_db + 3.0);
  };

  cli.set_config("f_rf_hz", 2.45e9);
  cli.set_config("if_points", static_cast<double>(ifs.size()));
  cli.add_metric("nf_active_lptv_5mhz_db", nf_a[8]);
  cli.add_metric("nf_passive_lptv_5mhz_db", nf_p[8]);
  cli.add_metric("flicker_corner_active_hz", corner(nf_a));
  cli.add_metric("flicker_corner_passive_hz", corner(nf_p));

  out << "\nSummary (LPTV engine vs paper):\n";
  out << "  active:  NF@5MHz = " << rf::ConsoleTable::num(nf_a[8], 2)
            << " dB (paper 7.6), 1/f corner ~ "
            << rf::ConsoleTable::num(corner(nf_a) / 1e3, 0) << " kHz\n";
  out << "  passive: NF@5MHz = " << rf::ConsoleTable::num(nf_p[8], 2)
            << " dB (paper 10.2), 1/f corner ~ "
            << rf::ConsoleTable::num(corner(nf_p) / 1e3, 0)
            << " kHz (paper: < 100 kHz)\n";
  return cli.finish();
}
