// ABL3: Degeneration ablation (paper section II-B: the PMOS switches Sw1-2
// double as degeneration resistance Rdeg, "thereby increasing linearity of
// passive mixer" [6]).
//
// Two sub-experiments on the transistor-level passive mixer:
//  (a) PMOS width sweep: the switch's own triode resistance is signal-
//      dependent, so a *narrower* switch is a *worse* (more nonlinear)
//      resistor — sizing the PMOS wide enough matters before any
//      degeneration benefit appears.
//  (b) Ideal-resistor sweep at fixed wide PMOS: adding linear series
//      resistance trades conversion gain for linearity, the trade the
//      paper sizes Sw1-2 for.
#include <iostream>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "rf/twotone.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

namespace {

rf::InterceptResult measure_iip3(const MixerConfig& cfg) {
  core::TransientMeasureOptions topt;
  topt.grid_hz = 1e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;
  std::vector<rf::ToneLevels> sweep;
  for (const double pin : {-45.0, -40.0, -35.0, -30.0}) {
    auto mixer = core::build_transistor_mixer(cfg);
    sweep.push_back(core::measure_two_tone_point(*mixer, pin, 5e6, 6e6, topt));
  }
  return rf::extract_intercepts(sweep);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_ablation_rdeg");
  std::ostream& out = cli.out();
  out << "=== ABL3: passive-mode linearity vs degeneration ===\n\n";

  out << "(a) PMOS Sw1-2 width sweep (the switch IS the resistor):\n";
  rf::ConsoleTable ta({"Sw1-2 width (um)", "gain (dB)", "IIP3 (dBm)"});
  std::vector<double> iip3_w;
  for (const double w_um : {10.0, 30.0, 90.0}) {
    MixerConfig cfg;
    cfg.mode = MixerMode::kPassive;
    cfg.sw12_w = w_um * 1e-6;
    const rf::InterceptResult r = measure_iip3(cfg);
    iip3_w.push_back(r.iip3_dbm);
    ta.add_row({rf::ConsoleTable::num(w_um, 0), rf::ConsoleTable::num(r.gain_db, 1),
                rf::ConsoleTable::num(r.iip3_dbm, 1)});
  }
  ta.print(out);
  out << "  -> wider PMOS = more linear series resistance = better IIP3: "
            << (iip3_w.back() > iip3_w.front() ? "yes" : "NO") << "\n\n";

  out << "(b) Ideal series degeneration at fixed wide PMOS (90 um):\n";
  rf::ConsoleTable tb({"extra Rdeg (ohm)", "gain (dB)", "IIP3 (dBm)"});
  std::vector<double> gain_r, iip3_r;
  for (const double r_extra : {0.0, 100.0, 300.0}) {
    MixerConfig cfg;
    cfg.mode = MixerMode::kPassive;
    cfg.sw12_w = 90e-6;
    cfg.rdeg_ideal_extra = r_extra;
    const rf::InterceptResult r = measure_iip3(cfg);
    gain_r.push_back(r.gain_db);
    iip3_r.push_back(r.iip3_dbm);
    tb.add_row({rf::ConsoleTable::num(r_extra, 0), rf::ConsoleTable::num(r.gain_db, 1),
                rf::ConsoleTable::num(r.iip3_dbm, 1)});
  }
  tb.print(out);
  out << "  -> linear degeneration trades gain ("
            << rf::ConsoleTable::num(gain_r.front() - gain_r.back(), 1)
            << " dB lost) for linearity (IIP3 moves "
            << rf::ConsoleTable::num(iip3_r.back() - iip3_r.front(), 1) << " dB)\n";
  return cli.finish();
}
