// FIG8: Conversion gain vs RF frequency (paper Fig. 8).
//
// Reproduces the 0.5-7 GHz sweep at 5 MHz IF for both mixer modes with two
// engines: the calibrated behavioral model (paper-anchored values) and the
// LPTV conversion-matrix model (physics-derived, independently calibrated
// element values). Paper anchors: 29.2 dB active / 25.5 dB passive at
// 2.45 GHz; -3 dB bands 1-5.5 GHz (active) and 0.5-5.1 GHz (passive).
#include <iostream>
#include <string>

#include "core/behavioral.hpp"
#include "core/circuits.hpp"
#include "core/lptv_model.hpp"
#include "mathx/interp.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "spice/op.hpp"

using namespace rfmix;
using core::BehavioralMixer;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_fig8_gain_vs_rf");
  std::ostream& out = cli.out();
  const bool csv = cli.csv();
  if (!csv) out << "=== FIG8: conversion gain vs RF frequency (IF = 5 MHz) ===\n\n";

  MixerConfig active;
  active.mode = MixerMode::kActive;
  MixerConfig passive;
  passive.mode = MixerMode::kPassive;
  const BehavioralMixer beh_active(active);
  const BehavioralMixer beh_passive(passive);

  rf::ConsoleTable table({"RF (GHz)", "active beh (dB)", "active lptv (dB)",
                          "passive beh (dB)", "passive lptv (dB)"});

  std::vector<double> freqs, ga_b, gp_b;
  for (double f = 0.5e9; f <= 7.0e9 + 1.0; f += 0.25e9) freqs.push_back(f);

  // The LPTV points dominate the runtime; the batch sweep solves them
  // concurrently on the runtime pool (bit-identical to the pointwise loop).
  const std::vector<double> ga_l = core::lptv_gain_vs_rf_sweep_db(active, freqs);
  const std::vector<double> gp_l = core::lptv_gain_vs_rf_sweep_db(passive, freqs);

  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const double f = freqs[i];
    ga_b.push_back(beh_active.conversion_gain_db(f));
    gp_b.push_back(beh_passive.conversion_gain_db(f));
    table.add_row({rf::ConsoleTable::num(f / 1e9, 2), rf::ConsoleTable::num(ga_b.back(), 2),
                   rf::ConsoleTable::num(ga_l[i], 2),
                   rf::ConsoleTable::num(gp_b.back(), 2),
                   rf::ConsoleTable::num(gp_l[i], 2)});
  }
  // Band-edge extraction from the LPTV series.
  auto edges = [&](const std::vector<double>& g) {
    double peak = -1e9;
    for (const double v : g) peak = std::max(peak, v);
    const double lo = mathx::first_crossing(freqs, g, peak - 3.0);
    // search from the top end for the upper edge
    std::vector<double> rev_f(freqs.rbegin(), freqs.rend());
    std::vector<double> rev_g(g.rbegin(), g.rend());
    const double hi = mathx::first_crossing(rev_f, rev_g, peak - 3.0);
    return std::pair<double, double>(lo, hi);
  };
  const auto [alo, ahi] = edges(ga_l);
  const auto [plo, phi] = edges(gp_l);

  // Transistor-engine cross-check: DC bias of the active-mode mixer. This
  // exercises the full Newton/LU path, so the run report carries solver
  // telemetry from all three engines.
  auto mixer = core::build_transistor_mixer(active);
  const spice::Solution bias = spice::dc_operating_point(mixer->circuit);
  const double bias_power_mw =
      spice::total_dissipated_power(mixer->circuit, bias) * 1e3;

  cli.set_config("f_rf_start_hz", freqs.front());
  cli.set_config("f_rf_stop_hz", freqs.back());
  cli.set_config("points", static_cast<double>(freqs.size()));
  cli.set_config("f_if_hz", 5e6);
  cli.add_metric("gain_active_lptv_2g45_db",
                 core::lptv_conversion_gain_at_rf_db(active, 2.45e9));
  cli.add_metric("gain_passive_lptv_2g45_db",
                 core::lptv_conversion_gain_at_rf_db(passive, 2.45e9));
  cli.add_metric("band_active_lo_ghz", alo / 1e9);
  cli.add_metric("band_active_hi_ghz", ahi / 1e9);
  cli.add_metric("band_passive_lo_ghz", plo / 1e9);
  cli.add_metric("band_passive_hi_ghz", phi / 1e9);
  cli.add_metric("bias_power_active_xtor_mw", bias_power_mw);

  if (csv) {
    table.print_csv(out);
    return cli.finish();
  }
  table.print(out);

  out << "\nSummary (LPTV engine vs paper):\n";
  out << "  active:  gain@2.45G = " << rf::ConsoleTable::num(
                   core::lptv_conversion_gain_at_rf_db(active, 2.45e9), 2)
            << " dB (paper 29.2), band " << rf::ConsoleTable::num(alo / 1e9, 2) << "-"
            << rf::ConsoleTable::num(ahi / 1e9, 2) << " GHz (paper 1.0-5.5)\n";
  out << "  passive: gain@2.45G = " << rf::ConsoleTable::num(
                   core::lptv_conversion_gain_at_rf_db(passive, 2.45e9), 2)
            << " dB (paper 25.5), band " << rf::ConsoleTable::num(plo / 1e9, 2) << "-"
            << rf::ConsoleTable::num(phi / 1e9, 2) << " GHz (paper 0.5-5.1)\n";
  return cli.finish();
}
