// Blocker desensitization extension: small-signal conversion gain of a
// wanted tone vs the power of a large out-of-channel blocker.
//
// This is the system-level consequence of the IIP3/P1dB rows of Table I:
// in a blocker-rich band (Wi-Fi coexistence, the paper's IoT scenario) the
// passive mode keeps its gain while the active mode desensitizes early —
// the reason the planner switches modes per standard.
#include <iostream>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "mathx/units.hpp"
#include "obs/cli.hpp"
#include "rf/spectrum.hpp"
#include "spice/tran.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

namespace {

/// Gain of the wanted tone (LO+5 MHz, fixed -45 dBm) with a blocker at
/// LO+40 MHz at `blocker_dbm`.
double wanted_gain_db(const MixerConfig& cfg, double blocker_dbm) {
  core::TransientMeasureOptions topt;
  topt.grid_hz = 5e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;

  const double a_want = mathx::sine_amplitude_from_dbm(-45.0);
  const double a_blk = mathx::sine_amplitude_from_dbm(blocker_dbm);

  auto mixer = core::build_transistor_mixer(cfg);
  core::RfStimulus stim;
  stim.freqs_hz = {cfg.f_lo_hz + 5e6, cfg.f_lo_hz + 40e6};
  stim.amplitude = 1.0;  // per-tone scaling handled below via two waveforms
  // Build the two-tone waveform manually so each tone has its own level.
  spice::MultiToneWave p, n;
  p.offset = 0.55;
  n.offset = 0.55;
  p.tones.push_back({a_want / 2.0, cfg.f_lo_hz + 5e6, 0.0});
  p.tones.push_back({a_blk / 2.0, cfg.f_lo_hz + 40e6, 0.0});
  n.tones.push_back({-a_want / 2.0, cfg.f_lo_hz + 5e6, 0.0});
  n.tones.push_back({-a_blk / 2.0, cfg.f_lo_hz + 40e6, 0.0});
  mixer->vrf_p->set_waveform(spice::Waveform(p));
  mixer->vrf_m->set_waveform(spice::Waveform(n));

  const double dt = 1.0 / (cfg.f_lo_hz * topt.samples_per_lo);
  const double t_rec = topt.grid_periods / topt.grid_hz;
  const double t_stop = topt.settle_periods / topt.grid_hz + t_rec;
  spice::TranOptions tro;
  tro.newton.max_iterations = 80;
  const spice::TranResult res = spice::transient(
      mixer->circuit, t_stop, dt, {{mixer->if_p, mixer->if_m, "if"}}, tro);
  rf::SampledWaveform w;
  w.sample_rate_hz = 1.0 / dt;
  w.samples = res.waveform(0);
  const std::size_t keep = static_cast<std::size_t>(std::llround(t_rec / dt));
  w.samples.erase(w.samples.begin(), w.samples.end() - static_cast<std::ptrdiff_t>(keep));
  return mathx::db_from_voltage_ratio(rf::tone_amplitude(w, 5e6) / a_want);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_blocker_desense");
  std::ostream& out = cli.out();
  out << "=== Blocker desensitization: wanted-tone gain vs blocker power ===\n"
               "    wanted: LO+5 MHz @ -45 dBm; blocker: LO+40 MHz, swept\n\n";

  rf::ConsoleTable table({"blocker (dBm)", "active gain (dB)", "active drop (dB)",
                          "passive gain (dB)", "passive drop (dB)"});
  MixerConfig act;
  act.mode = MixerMode::kActive;
  MixerConfig pas;
  pas.mode = MixerMode::kPassive;

  const double g0a = wanted_gain_db(act, -100.0);
  const double g0p = wanted_gain_db(pas, -100.0);
  double a_1db = 99, p_1db = 99;
  for (const double blk : {-35.0, -30.0, -25.0, -20.0, -15.0}) {
    const double ga = wanted_gain_db(act, blk);
    const double gp = wanted_gain_db(pas, blk);
    if (g0a - ga >= 1.0 && a_1db > 98) a_1db = blk;
    if (g0p - gp >= 1.0 && p_1db > 98) p_1db = blk;
    table.add_row({rf::ConsoleTable::num(blk, 0), rf::ConsoleTable::num(ga, 2),
                   rf::ConsoleTable::num(g0a - ga, 2), rf::ConsoleTable::num(gp, 2),
                   rf::ConsoleTable::num(g0p - gp, 2)});
  }
  table.print(out);
  out << "\n1 dB blocker desensitization point: active ~ "
            << (a_1db > 98 ? "> -15" : rf::ConsoleTable::num(a_1db, 0)) << " dBm, passive ~ "
            << (p_1db > 98 ? "> -15" : rf::ConsoleTable::num(p_1db, 0)) << " dBm\n";
  out << "Shape check: the passive mode tolerates a stronger blocker before\n"
               "desensitizing (higher P1dB/IIP3), matching Fig. 1's trade-off.\n";
  return cli.finish();
}
