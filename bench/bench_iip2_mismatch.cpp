// TXT1 extension: Monte-Carlo IIP2 under Pelgrom device mismatch.
//
// The paper claims "IIP2 > 65 dBm for both cases" from a typical-corner
// simulation; in silicon, double-balanced-mixer IIP2 is limited by device
// MISMATCH, which breaks the even-order cancellation. This bench draws
// mismatched mixer instances (sigma_VT = 3.5 mV*um / sqrt(WL)) and reports
// the IIP2 distribution — the study a tape-out review would demand on top
// of the paper's claim.
#include <algorithm>
#include <chrono>
#include <iostream>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "mathx/rng.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "rf/twotone.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/montecarlo.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

namespace {

double measure_iip2(const MixerConfig& cfg, const core::DeviceVariation& var) {
  core::TransientMeasureOptions topt;
  topt.grid_hz = 1e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;
  std::vector<rf::ToneLevels> sweep;
  for (const double pin : {-45.0, -40.0, -35.0}) {
    // Each power point re-draws the same instance: clone the RNG state by
    // reseeding per instance outside this function.
    core::DeviceVariation v = var;
    mathx::Rng rng_copy = *var.mismatch_rng;
    v.mismatch_rng = &rng_copy;
    auto mixer = core::build_transistor_mixer(cfg, v);
    sweep.push_back(core::measure_two_tone_point(*mixer, pin, 5e6, 6e6, topt));
  }
  const rf::InterceptResult r = rf::extract_intercepts(sweep);
  return r.has_iip2 ? r.iip2_dbm : 300.0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_iip2_mismatch");
  std::ostream& out = cli.out();
  out << "=== Monte-Carlo IIP2 under Pelgrom mismatch (extends TXT1) ===\n\n";
  out << "runtime: " << runtime::ThreadPool::current().concurrency()
            << " lanes (RFMIX_THREADS to override)\n\n";

  const int n_instances = 8;
  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;

    // Trials run concurrently on the pool; each draws its devices from a
    // counter-forked stream, so the table is identical at any thread count.
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<double> iip2 = spice::tech65::monte_carlo_trials(
        n_instances, 1000u, [&](int, mathx::Rng& rng) {
          core::DeviceVariation var;
          var.mismatch_rng = &rng;
          return measure_iip2(cfg, var);
        });
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    rf::ConsoleTable table({"instance", "IIP2 (dBm)"});
    for (int i = 0; i < n_instances; ++i)
      table.add_row({std::to_string(i),
                     rf::ConsoleTable::num(iip2[static_cast<std::size_t>(i)], 1)});
    std::sort(iip2.begin(), iip2.end());
    out << "--- " << frontend::mode_name(mode) << " mode ---\n";
    table.print(out);
    out << "  worst: " << rf::ConsoleTable::num(iip2.front(), 1)
              << " dBm, median: "
              << rf::ConsoleTable::num(iip2[iip2.size() / 2], 1)
              << " dBm  (paper claim: > 65 dBm, typical corner)\n";
    out << "  " << n_instances << " trials in " << rf::ConsoleTable::num(secs, 2)
              << " s\n\n";
  }

  out << "Reading: with realistic 65 nm matching, the worst-case instances fall\n"
               "well below the typical-corner IIP2 — the usual reason production parts\n"
               "add IIP2 calibration. The paper's claim holds for its simulation\n"
               "methodology (typical corner, ideal matching), reproduced here by the\n"
               "behavioral engine and the matched transistor run in bench_iip2.\n";
  return cli.finish();
}
