// CACHE: service-layer replay of the Fig. 8 gain-vs-RF sweep.
//
// Runs the same batch of mixer-gain requests (both modes, 0.5-7 GHz at
// 5 MHz IF) twice through the svc:: scheduler against one result cache:
// the cold pass executes every LPTV solve, the warm pass must be served
// entirely from the cache with bit-identical payloads. Reports cold/warm
// wall time, speedup, and hit rate — the service layer's headline numbers.
#include <chrono>
#include <string>
#include <vector>

#include "core/metrics.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "runtime/thread_pool.hpp"
#include "svc/request.hpp"
#include "svc/scheduler.hpp"

using namespace rfmix;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_cache_sweep");
  std::ostream& out = cli.out();
  if (!cli.csv())
    out << "=== CACHE: Fig. 8 sweep replay through the svc result cache ===\n\n";

  // The Fig. 8 request set: gain vs RF for both modes.
  std::vector<svc::JobScheduler::Job> jobs;
  std::vector<double> freqs;
  for (double f = 0.5e9; f <= 7.0e9 + 1.0; f += 0.25e9) freqs.push_back(f);
  for (const core::MixerMode mode : {core::MixerMode::kActive, core::MixerMode::kPassive}) {
    for (const double f_rf : freqs) {
      svc::Request req;
      req.kind = svc::RequestKind::kMixerMetric;
      req.metric.metric = core::MixerMetric::kGainDb;
      req.metric.config.mode = mode;
      req.metric.f_rf_hz = f_rf;
      jobs.push_back({svc::request_key(req), [req] { return svc::execute_request(req); }, 0});
    }
  }

  svc::ResultCache cache(4096);
  svc::JobScheduler sched(cache, runtime::ThreadPool::current());

  const auto t_cold = std::chrono::steady_clock::now();
  const std::vector<std::string> cold = sched.run_batch(jobs);
  const double cold_ms = ms_since(t_cold);

  const auto t_warm = std::chrono::steady_clock::now();
  const std::vector<std::string> warm = sched.run_batch(jobs);
  const double warm_ms = ms_since(t_warm);

  bool identical = cold.size() == warm.size();
  for (std::size_t i = 0; identical && i < cold.size(); ++i)
    identical = cold[i] == warm[i];

  const auto stats = sched.stats();
  const double hit_rate =
      static_cast<double>(stats.cache_hits) / static_cast<double>(stats.submitted);
  const double speedup = warm_ms > 0.0 ? cold_ms / warm_ms : 0.0;

  rf::ConsoleTable table({"pass", "requests", "wall (ms)", "cache hits"});
  table.add_row({"cold", std::to_string(jobs.size()), rf::ConsoleTable::num(cold_ms, 2),
                 "0"});
  table.add_row({"warm", std::to_string(jobs.size()), rf::ConsoleTable::num(warm_ms, 2),
                 std::to_string(stats.cache_hits)});
  if (cli.csv()) {
    table.print_csv(out);
  } else {
    table.print(out);
    out << "\nwarm replay " << rf::ConsoleTable::num(speedup, 1)
        << "x faster than cold; payloads bit-identical: " << (identical ? "yes" : "NO")
        << "\n";
  }

  cli.set_config("requests", static_cast<double>(jobs.size()));
  cli.set_config("threads", static_cast<double>(runtime::ThreadPool::current().concurrency()));
  cli.add_metric("cold_ms", cold_ms);
  cli.add_metric("warm_ms", warm_ms);
  cli.add_metric("speedup", speedup);
  cli.add_metric("hit_rate", hit_rate);
  cli.add_metric("bit_identical", identical ? 1.0 : 0.0);
  cli.add_metric("executed", static_cast<double>(stats.executed));

  // Failures the driver can see: a warm pass that re-executed or drifted.
  if (!identical || stats.executed != jobs.size()) {
    out << "cache replay FAILED: executed=" << stats.executed << " expected "
        << jobs.size() << ", identical=" << identical << "\n";
    cli.finish();
    return 1;
  }
  return cli.finish();
}
