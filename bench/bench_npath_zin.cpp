// NPATH: mixer-first input impedance through the N-path front-end
// subsystem, plus the determinism and service contracts the subsystem
// ships with.
//
// Four sections:
//   1. Zin peak vs LO frequency — the translated-impedance peak must sit
//      at f_LO and move with it (the defining N-path property).
//   2. Q vs baseband resistance — the RF bandwidth is the baseband pole,
//      so Q scales with Zbb.
//   3. Harmonic re-radiation, 4 vs 8 phases — the 8-phase clock cancels
//      the 3 f_LO re-emission a 4-phase set produces.
//   4. Parity + service replay — the sweep is byte-identical across
//      thread counts and solver modes, and an npath_zin request replayed
//      through a ServerSession is served from cache bit-exactly.
#include <cmath>
#include <complex>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "mathx/solver_config.hpp"
#include "npath/zin.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/ac.hpp"
#include "svc/cache.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"

using namespace rfmix;

namespace {

npath::NpathSpec base_spec() {
  npath::NpathSpec s;
  s.lo.samples = 128;
  s.harmonics = 10;
  s.f_lo_hz = 1e9;
  s.switch_ron = 10.0;
  s.zbb_r = 1e3;
  s.zbb_c = 40e-12;
  return s;
}

double db20(double x) { return 20.0 * std::log10(std::max(x, 1e-300)); }

bool sweeps_identical(const npath::ZinSweep& a, const npath::ZinSweep& b) {
  if (a.points.size() != b.points.size()) return false;
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    if (std::memcmp(&a.points[i], &b.points[i], sizeof(npath::ZinPoint)) != 0)
      return false;
  }
  return std::memcmp(&a.summary, &b.summary, sizeof(npath::ZinSummary)) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_npath_zin");
  std::ostream& out = cli.out();
  if (!cli.csv())
    out << "=== NPATH: mixer-first Zin/S11 via the conversion matrix ===\n\n";

  // --- 1. Peak tracks f_LO -------------------------------------------------
  rf::ConsoleTable peak_table({"f_lo (GHz)", "f_peak (GHz)", "Zin peak (ohm)",
                               "Zin floor (ohm)", "min |S11| (dB)"});
  bool peak_tracks = true;
  for (const double f_lo : {0.7e9, 1.0e9, 1.4e9}) {
    npath::NpathSpec s = base_spec();
    s.f_lo_hz = f_lo;
    const npath::ZinSweep sw =
        npath::zin_sweep(s, spice::lin_space(0.5 * f_lo, 1.5 * f_lo, 81));
    double s11_min = 1.0;
    for (const auto& pt : sw.points) s11_min = std::min(s11_min, std::abs(pt.s11));
    peak_tracks = peak_tracks &&
                  std::abs(sw.summary.f_peak_hz - f_lo) <= 1.05 * f_lo / 80.0;
    peak_table.add_row({rf::ConsoleTable::num(f_lo / 1e9, 2),
                        rf::ConsoleTable::num(sw.summary.f_peak_hz / 1e9, 3),
                        rf::ConsoleTable::num(sw.summary.zin_peak_ohm, 1),
                        rf::ConsoleTable::num(sw.summary.zin_floor_ohm, 1),
                        rf::ConsoleTable::num(db20(s11_min), 1)});
  }
  if (cli.csv()) peak_table.print_csv(out); else peak_table.print(out);

  // --- 2. Q vs baseband resistance ----------------------------------------
  if (!cli.csv()) out << "\n";
  rf::ConsoleTable q_table({"Zbb R (ohm)", "BW-3dB (MHz)", "Q"});
  std::vector<double> qs;
  for (const double rb : {200.0, 1000.0, 5000.0}) {
    npath::NpathSpec s = base_spec();
    s.zbb_r = rb;
    const npath::ZinSweep sw =
        npath::zin_sweep(s, spice::lin_space(0.7e9, 1.3e9, 241));
    qs.push_back(sw.summary.q);
    q_table.add_row({rf::ConsoleTable::num(rb, 0),
                     rf::ConsoleTable::num(sw.summary.bw_3db_hz / 1e6, 2),
                     rf::ConsoleTable::num(sw.summary.q, 2)});
  }
  const bool q_monotone = qs[0] > 0.0 && qs[1] > qs[0] && qs[2] > qs[1];
  if (cli.csv()) q_table.print_csv(out); else q_table.print(out);

  // --- 3. Re-radiation: 4 vs 8 phases -------------------------------------
  if (!cli.csv()) out << "\n";
  rf::ConsoleTable rr_table({"phases", "rerad @ (N-1)f_LO (dB)", "rerad @ 3f_LO (dB)"});
  double rerad3[2] = {0.0, 0.0};
  int idx = 0;
  for (const int phases : {4, 8}) {
    npath::NpathSpec s = base_spec();
    s.lo.phases = phases;
    s.lo.duty = 1.0 / phases;
    s.harmonics = phases + 2;
    const npath::ZinSweep sw =
        npath::zin_sweep(s, spice::lin_space(0.9e9, 1.1e9, 21));
    double rm = 0.0;
    for (const auto& pt : sw.points) rm = std::max(rm, pt.rerad_minus);
    rerad3[idx++] = sw.summary.rerad_3lo_max;
    rr_table.add_row({std::to_string(phases), rf::ConsoleTable::num(db20(rm), 1),
                      rf::ConsoleTable::num(db20(sw.summary.rerad_3lo_max), 1)});
  }
  // The 8-phase set must bury its 3rd-harmonic re-emission at least 60 dB
  // below the 4-phase one.
  const bool hr_ok = rerad3[0] > 1e-3 && rerad3[1] < 1e-6;
  if (cli.csv()) rr_table.print_csv(out); else rr_table.print(out);

  // --- 4. Parity + service replay ------------------------------------------
  const npath::NpathSpec pspec = base_spec();
  const std::vector<double> grid = spice::lin_space(0.8e9, 1.2e9, 33);
  npath::ZinSweep ref;
  bool parity_ok = true;
  bool first = true;
  for (const int threads : {1, 8}) {
    for (const auto mode :
         {mathx::SolverMode::kClassic, mathx::SolverMode::kReuse}) {
      runtime::ScopedPool pool(threads);
      mathx::ScopedSolverMode solver(mode);
      npath::ZinSweep sw = npath::zin_sweep(pspec, grid);
      if (first) {
        ref = std::move(sw);
        first = false;
      } else {
        parity_ok = parity_ok && sweeps_identical(ref, sw);
      }
    }
  }

  bool replay_ok = false;
  {
    runtime::ScopedPool pool(4);
    svc::ResultCache cache(64);
    svc::ServerSession session(cache, runtime::ThreadPool::current());
    const std::string line =
        R"({"v":2,"id":1,"kind":"npath_zin","params":{"phases":4,"harmonics":10,)"
        R"("samples":128,"f_lo_hz":1e9,"zbb_r":1e3,"zbb_c":4e-11,)"
        R"("sweep":{"f_start_hz":8e8,"f_stop_hz":1.2e9,"points":33}}})";
    const svc::Response cold = session.handle_line(line);
    const svc::Response warm = session.handle_line(line);
    const auto tail = [](const std::string& s) {
      return s.substr(s.find("\"key\":"));
    };
    replay_ok = cold.ok && warm.ok &&
                warm.line.find("\"cached\":true") != std::string::npos &&
                tail(cold.line) == tail(warm.line);
  }

  if (!cli.csv()) {
    out << "\npeak tracks f_LO: " << (peak_tracks ? "yes" : "NO")
        << "; Q monotone in Zbb: " << (q_monotone ? "yes" : "NO")
        << "; 8-phase cancels 3f_LO: " << (hr_ok ? "yes" : "NO")
        << "\nsweep bit-identical (1/8 threads x classic/reuse): "
        << (parity_ok ? "yes" : "NO")
        << "; rfmixd replay byte-identical: " << (replay_ok ? "yes" : "NO")
        << "\n";
  }

  cli.set_config("samples", double(pspec.lo.samples));
  cli.set_config("harmonics", double(pspec.harmonics));
  cli.add_metric("peak_tracks_flo", peak_tracks ? 1.0 : 0.0);
  cli.add_metric("q_200", qs[0]);
  cli.add_metric("q_1000", qs[1]);
  cli.add_metric("q_5000", qs[2]);
  cli.add_metric("rerad3_4ph_db", db20(rerad3[0]));
  cli.add_metric("rerad3_8ph_db", db20(rerad3[1]));
  cli.add_metric("parity_bit_identical", parity_ok ? 1.0 : 0.0);
  cli.add_metric("replay_bit_identical", replay_ok ? 1.0 : 0.0);

  if (!peak_tracks || !q_monotone || !hr_ok || !parity_ok || !replay_ok) {
    out << "npath acceptance FAILED\n";
    cli.finish();
    return 1;
  }
  return cli.finish();
}
