// SERVER: throughput of the concurrent rfmixd transport.
//
// Spins a real ServerLoop on a Unix socket in-process and drives it with
// 8 pipelining clients sharing one pool of mixer-gain requests, against
// the serial baseline of the same requests answered one at a time by
// ServerSession::handle_line. A third pass replays everything warm, so
// the protocol overhead (event loop + socket + JSON envelope) is
// measured separately from the physics. Reports wall times, speedup, and
// warm-path requests/second.
#include <chrono>
#include <string>
#include <vector>

#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "runtime/thread_pool.hpp"
#include "svc/cache.hpp"
#include "svc/server.hpp"

#ifndef _WIN32

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <thread>

#include "svc/event_loop.hpp"

using namespace rfmix;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Send every line, then read until `expected` responses arrived.
/// Returns the number of "ok":true lines seen.
int drive_client(const std::string& path, const std::vector<std::string>& lines,
                 int expected) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  std::string all;
  for (const std::string& line : lines) all += line + "\n";
  std::size_t off = 0;
  // Interleave sending and receiving: with per-connection backpressure a
  // blind sendall can deadlock against our own unread responses.
  std::string buf;
  int got = 0, ok = 0;
  while (got < expected) {
    pollfd p{fd, POLLIN, 0};
    if (off < all.size()) p.events |= POLLOUT;
    if (::poll(&p, 1, 60000) <= 0) break;
    if ((p.revents & POLLOUT) != 0 && off < all.size()) {
      const ssize_t n = ::send(fd, all.data() + off, all.size() - off, MSG_NOSIGNAL);
      if (n > 0) off += static_cast<std::size_t>(n);
    }
    if ((p.revents & (POLLIN | POLLHUP)) != 0) {
      char chunk[65536];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) break;
      buf.append(chunk, static_cast<std::size_t>(n));
      std::size_t pos = 0, nl;
      while ((nl = buf.find('\n', pos)) != std::string::npos) {
        if (buf.compare(pos, nl - pos, "") != 0) {
          ++got;
          if (buf.find("\"ok\":true", pos) < nl) ++ok;
        }
        pos = nl + 1;
      }
      buf.erase(0, pos);
    }
  }
  ::close(fd);
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_server_concurrency");
  std::ostream& out = cli.out();
  if (!cli.csv())
    out << "=== SERVER: concurrent rfmixd transport vs serial session ===\n\n";

  constexpr int kClients = 8;
  constexpr int kPerClient = 8;

  // Globally unique AC sweeps (each ladder has a distinct resistor value),
  // so every request is a real solve on the cold pass and a pure cache
  // hit on the warm one.
  std::vector<std::vector<std::string>> lines(kClients);
  std::vector<std::string> flat;
  for (int c = 0; c < kClients; ++c) {
    for (int r = 0; r < kPerClient; ++r) {
      const int tag = c * kPerClient + r;
      std::string netlist = "V1 n0 0 DC 0 AC 1\\n";
      for (int k = 0; k < 10; ++k) {
        netlist += "R" + std::to_string(k + 1) + " n" + std::to_string(k) + " n" +
                   std::to_string(k + 1) + " " + std::to_string(1000 + tag) + "\\n";
        netlist += "C" + std::to_string(k + 1) + " n" + std::to_string(k + 1) +
                   " 0 1n\\n";
      }
      netlist += ".end\\n";
      std::string line = "{\"v\":2,\"id\":\"c" + std::to_string(c) + "-" +
                         std::to_string(r) + "\",\"kind\":\"ac\"," +
                         "\"priority\":" + std::to_string(c % 3) +
                         ",\"params\":{\"netlist\":\"" + netlist +
                         "\",\"ac\":{\"f_start_hz\":1e3,\"f_stop_hz\":1e8," +
                         "\"points\":400,\"probe\":\"n10\"}}}";
      lines[c].push_back(line);
      flat.push_back(line);
    }
  }

  // Serial baseline: one session, one request at a time (cold cache).
  double serial_ms = 0.0;
  {
    svc::ResultCache cache(4096);
    svc::ServerSession session(cache, runtime::ThreadPool::current());
    const auto t0 = std::chrono::steady_clock::now();
    int ok = 0;
    for (const std::string& line : flat) ok += session.handle_line(line).ok ? 1 : 0;
    serial_ms = ms_since(t0);
    if (ok != static_cast<int>(flat.size())) {
      out << "serial pass had failures (" << ok << "/" << flat.size() << ")\n";
      return 1;
    }
  }

  // Concurrent transport: same requests, 8 clients over the socket.
  svc::ResultCache cache(4096);
  svc::ServerSession session(cache, runtime::ThreadPool::current());
  svc::ServerLoop loop(session);
  const std::string path =
      "/tmp/rfmix-bench-server-" + std::to_string(::getpid()) + ".sock";
  ::unlink(path.c_str());
  std::string err;
  if (!loop.listen_unix(path, &err)) {
    out << "listen failed: " << err << "\n";
    return 1;
  }
  std::thread loop_thread([&] { loop.run(); });

  const auto run_pass = [&]() -> std::pair<double, int> {
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<std::thread> clients;
    std::vector<int> oks(kClients, 0);
    for (int c = 0; c < kClients; ++c)
      clients.emplace_back(
          [&, c] { oks[c] = drive_client(path, lines[c], kPerClient); });
    for (auto& t : clients) t.join();
    int ok = 0;
    for (const int n : oks) ok += n;
    return {ms_since(t0), ok};
  };

  const auto [cold_ms, cold_ok] = run_pass();
  const auto [warm_ms, warm_ok] = run_pass();

  loop.request_shutdown();
  loop_thread.join();
  ::unlink(path.c_str());

  const int total = kClients * kPerClient;
  const double speedup = cold_ms > 0.0 ? serial_ms / cold_ms : 0.0;
  const double warm_rps = warm_ms > 0.0 ? 1000.0 * total / warm_ms : 0.0;

  rf::ConsoleTable table({"pass", "requests", "wall (ms)", "ok"});
  table.add_row({"serial", std::to_string(total), rf::ConsoleTable::num(serial_ms, 2),
                 std::to_string(total)});
  table.add_row({"8 clients cold", std::to_string(total),
                 rf::ConsoleTable::num(cold_ms, 2), std::to_string(cold_ok)});
  table.add_row({"8 clients warm", std::to_string(total),
                 rf::ConsoleTable::num(warm_ms, 2), std::to_string(warm_ok)});
  if (cli.csv()) {
    table.print_csv(out);
  } else {
    table.print(out);
    out << "\ncold serial/concurrent ratio " << rf::ConsoleTable::num(speedup, 2)
        << "x on " << runtime::ThreadPool::current().concurrency()
        << " thread(s); warm transport " << rf::ConsoleTable::num(warm_rps, 0)
        << " req/s\n";
  }

  cli.set_config("clients", kClients);
  cli.set_config("requests", total);
  cli.set_config("threads",
                 static_cast<double>(runtime::ThreadPool::current().concurrency()));
  cli.add_metric("serial_ms", serial_ms);
  cli.add_metric("concurrent_cold_ms", cold_ms);
  cli.add_metric("concurrent_warm_ms", warm_ms);
  cli.add_metric("speedup_vs_serial", speedup);
  cli.add_metric("warm_req_per_s", warm_rps);

  if (cold_ok != total || warm_ok != total) {
    out << "concurrent pass dropped responses: cold " << cold_ok << "/" << total
        << ", warm " << warm_ok << "/" << total << "\n";
    cli.finish();
    return 1;
  }
  return cli.finish();
}

#else  // _WIN32

int main(int argc, char** argv) {
  rfmix::obs::BenchCli cli(argc, argv, "bench_server_concurrency");
  cli.out() << "bench_server_concurrency requires Unix sockets\n";
  return cli.finish();
}

#endif  // _WIN32
