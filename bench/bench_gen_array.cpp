// GEN-ARRAY: generated beamforming-array requests through the rfmixd
// service layer.
//
// Builds a batch of v2 `gen` requests (mismatched rx_array, per-element
// npath_zin analysis plus a mid-size DC op) and runs it twice through one
// ServerSession: the cold pass executes, the warm pass must be served
// entirely from cache with byte-identical response payloads.
//
// Also reports the number the gen op exists for: keying a 100k-device
// array request from its GenSpec (microseconds) vs the old
// parse-the-expanded-deck route (render + elaborate + canonicalize), which
// is what every cache probe would cost if keys hashed the deck.
#include <chrono>
#include <string>
#include <vector>

#include "gen/templates.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/circuit.hpp"
#include "spice/parser.hpp"
#include "svc/canonical.hpp"
#include "svc/json_parse.hpp"
#include "svc/request.hpp"
#include "svc/server.hpp"

using namespace rfmix;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

std::string gen_line(int id, int elements, const std::string& analysis,
                     const std::string& extra) {
  std::string line = "{\"v\":2,\"id\":" + std::to_string(id) +
                     ",\"kind\":\"gen\",\"params\":{\"template\":\"rx_array\","
                     "\"elements\":" +
                     std::to_string(elements) +
                     ",\"paths\":4,\"sections\":6,\"zbb_c\":2e-12,"
                     "\"mismatch\":0.05,\"seed\":11,\"analysis\":\"" +
                     analysis + "\"" + extra + "}}";
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_gen_array");
  std::ostream& out = cli.out();
  if (!cli.csv())
    out << "=== GEN-ARRAY: generated array requests through rfmixd ===\n\n";

  // The request batch: per-element N-path sweeps over a spread of array
  // sizes and seeds, plus a 128-element DC op (7424 devices).
  std::vector<std::string> lines;
  int id = 1;
  for (const int elements : {8, 16, 32})
    lines.push_back(gen_line(
        id++, elements, "npath_zin",
        ",\"sweep\":{\"f_start_hz\":8e8,\"f_stop_hz\":1.2e9,\"points\":11}"));
  lines.push_back(gen_line(id++, 128, "op", ""));

  svc::ResultCache cache(1024);
  svc::ServerSession session(cache, runtime::ThreadPool::current());

  const auto t_cold = std::chrono::steady_clock::now();
  std::vector<std::string> cold;
  for (const std::string& line : lines) cold.push_back(session.handle_line(line).line);
  const double cold_ms = ms_since(t_cold);

  const auto t_warm = std::chrono::steady_clock::now();
  std::vector<std::string> warm;
  for (const std::string& line : lines) warm.push_back(session.handle_line(line).line);
  const double warm_ms = ms_since(t_warm);

  // Responses may differ only in the cached flag.
  bool identical = true;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string expect = cold[i];
    const std::size_t at = expect.find("\"cached\":false");
    if (at != std::string::npos) {
      expect.replace(at, 14, "\"cached\":true");
      ++hits;
    }
    if (warm[i] != expect) identical = false;
  }

  // Key-derivation comparison at 100k+ devices: GenSpec-derived canonical
  // key vs hashing the elaborated deck.
  svc::Request big;
  big.kind = svc::RequestKind::kGen;
  big.gen.spec.elements = 2048;
  big.gen.spec.sections = 6;
  big.gen.spec.zbb_c = 2e-12;
  big.gen.spec.mismatch = 0.05;
  const auto t_key = std::chrono::steady_clock::now();
  const svc::Hash128 key = svc::request_key(big);
  const double key_ms = ms_since(t_key);

  const auto t_deck = std::chrono::steady_clock::now();
  const spice::Circuit ckt = spice::parse_netlist(gen::render_netlist(big.gen.spec));
  svc::CanonicalWriter w;
  svc::append_canonical_circuit(w, ckt);
  const svc::Hash128 deck_key = svc::hash128(w.str());
  const double deck_ms = ms_since(t_deck);

  rf::ConsoleTable table({"pass", "requests", "ms"});
  table.add_row({"cold", rf::ConsoleTable::num(double(lines.size()), 0),
                 rf::ConsoleTable::num(cold_ms, 1)});
  table.add_row({"warm", rf::ConsoleTable::num(double(lines.size()), 0),
                 rf::ConsoleTable::num(warm_ms, 1)});
  if (!cli.csv()) {
    table.print(out);
    out << "\nwarm hits " << hits << "/" << lines.size()
        << ", payloads bit-identical: " << (identical ? "yes" : "NO") << "\n";
    out << "keying a " << ckt.devices().size()
        << "-device gen request: " << rf::ConsoleTable::num(key_ms, 3)
        << " ms from GenSpec vs " << rf::ConsoleTable::num(deck_ms, 1)
        << " ms via the expanded deck (" << key.hex().substr(0, 8) << " / "
        << deck_key.hex().substr(0, 8) << ")\n";
  }

  cli.set_config("requests", double(lines.size()));
  cli.add_metric("cold_ms", cold_ms);
  cli.add_metric("warm_ms", warm_ms);
  cli.add_metric("speedup", warm_ms > 0.0 ? cold_ms / warm_ms : 0.0);
  cli.add_metric("hits", double(hits));
  cli.add_metric("bit_identical", identical ? 1.0 : 0.0);
  cli.add_metric("key_from_spec_ms", key_ms);
  cli.add_metric("key_from_deck_ms", deck_ms);

  if (!identical || hits != lines.size()) {
    out << "GEN-ARRAY FAILED: warm pass not fully cached (" << hits << "/"
        << lines.size() << ", identical=" << identical << ")\n";
    cli.finish();
    return 1;
  }
  return cli.finish();
}
