// Robustness extension: conversion gain across process corners.
//
// The paper reports typical-corner numbers only; a design review would ask
// how the reconfigurable topology holds up across SS/FF/SF/FS. This bench
// sweeps the transistor-level mixer through all five corners in both modes.
#include <chrono>
#include <iostream>
#include <vector>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/op.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;
using spice::tech65::Corner;

namespace {

struct CornerRow {
  double gain = 0.0;
  double vif = 0.0;
  double idd = 0.0;
};

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_corners");
  std::ostream& out = cli.out();
  out << "=== Process-corner sweep: conversion gain and operating point ===\n\n";
  out << "runtime: " << runtime::ThreadPool::current().concurrency()
            << " lanes (RFMIX_THREADS to override)\n\n";

  core::TransientMeasureOptions topt;
  topt.grid_hz = 5e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;

  const std::vector<Corner> corners = {Corner::kTT, Corner::kSS, Corner::kFF,
                                       Corner::kSF, Corner::kFS};

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    out << "--- " << frontend::mode_name(mode) << " mode ---\n";

    // Corners are independent simulations; run them concurrently, each on
    // its own transistor circuit, then print in the fixed corner order.
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<CornerRow> rows =
        runtime::parallel_map(corners.size(), [&](std::size_t i) {
          core::DeviceVariation var;
          var.corner = corners[i];
          auto mixer = core::build_transistor_mixer(cfg, var);
          const spice::Solution op = spice::dc_operating_point(mixer->circuit);
          CornerRow row;
          row.vif = op.v(mixer->if_p);
          row.idd = -mixer->vdd->current(op) * 1e3;
          row.gain = core::measure_conversion_gain_db(*mixer, 5e6, 2e-3, topt);
          return row;
        });
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

    rf::ConsoleTable table({"corner", "gain (dB)", "V(if_p) (V)", "I(VDD) (mA)"});
    double g_min = 1e9, g_max = -1e9;
    for (std::size_t i = 0; i < corners.size(); ++i) {
      const CornerRow& row = rows[i];
      g_min = std::min(g_min, row.gain);
      g_max = std::max(g_max, row.gain);
      table.add_row({spice::tech65::corner_name(corners[i]),
                     rf::ConsoleTable::num(row.gain, 2), rf::ConsoleTable::num(row.vif, 3),
                     rf::ConsoleTable::num(row.idd, 2)});
    }
    table.print(out);
    out << "  gain spread across corners: " << rf::ConsoleTable::num(g_max - g_min, 2)
              << " dB  (" << corners.size() << " corners in "
              << rf::ConsoleTable::num(secs, 2) << " s)\n\n";
  }

  out << "Reading: the passive mode's gain is set by resistor/TIA ratios and the\n"
               "commutation duty cycle, so it moves less across corners than the active\n"
               "mode, whose gm and load operating point both shift — one more argument\n"
               "for reconfigurability in an IoT part that cannot be binned.\n";
  return cli.finish();
}
