// Robustness extension: conversion gain across process corners.
//
// The paper reports typical-corner numbers only; a design review would ask
// how the reconfigurable topology holds up across SS/FF/SF/FS. This bench
// sweeps the transistor-level mixer through all five corners in both modes.
#include <iostream>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "rf/table.hpp"
#include "spice/op.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;
using spice::tech65::Corner;

int main() {
  std::cout << "=== Process-corner sweep: conversion gain and operating point ===\n\n";

  core::TransientMeasureOptions topt;
  topt.grid_hz = 5e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    std::cout << "--- " << frontend::mode_name(mode) << " mode ---\n";
    rf::ConsoleTable table({"corner", "gain (dB)", "V(if_p) (V)", "I(VDD) (mA)"});
    double g_min = 1e9, g_max = -1e9;
    for (const Corner corner :
         {Corner::kTT, Corner::kSS, Corner::kFF, Corner::kSF, Corner::kFS}) {
      core::DeviceVariation var;
      var.corner = corner;
      auto mixer = core::build_transistor_mixer(cfg, var);
      const spice::Solution op = spice::dc_operating_point(mixer->circuit);
      const double vif = op.v(mixer->if_p);
      const double idd = -mixer->vdd->current(op) * 1e3;
      const double gain = core::measure_conversion_gain_db(*mixer, 5e6, 2e-3, topt);
      g_min = std::min(g_min, gain);
      g_max = std::max(g_max, gain);
      table.add_row({spice::tech65::corner_name(corner), rf::ConsoleTable::num(gain, 2),
                     rf::ConsoleTable::num(vif, 3), rf::ConsoleTable::num(idd, 2)});
    }
    table.print(std::cout);
    std::cout << "  gain spread across corners: " << rf::ConsoleTable::num(g_max - g_min, 2)
              << " dB\n\n";
  }

  std::cout << "Reading: the passive mode's gain is set by resistor/TIA ratios and the\n"
               "commutation duty cycle, so it moves less across corners than the active\n"
               "mode, whose gm and load operating point both shift — one more argument\n"
               "for reconfigurability in an IoT part that cannot be binned.\n";
  return 0;
}
