// LO drive extension: conversion gain vs LO amplitude (transistor engine).
//
// Classic mixer characterization: gain rises with LO drive while the
// switches commutate harder, then saturates once the quad switches fully —
// the plateau locates the minimum LO buffer swing the design needs
// (paper: 1.2 V supply leaves at most ~0.6 V of LO amplitude).
#include <iostream>

#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_lo_drive");
  std::ostream& out = cli.out();
  out << "=== LO drive sweep: conversion gain vs LO amplitude ===\n\n";

  core::TransientMeasureOptions topt;
  topt.grid_hz = 5e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;

  rf::ConsoleTable table({"LO ampl (V)", "active gain (dB)", "passive gain (dB)"});
  std::vector<double> gains_a, gains_p;
  for (const double a_lo : {0.15, 0.3, 0.45, 0.6}) {
    MixerConfig cfg;
    cfg.lo_amplitude = a_lo;
    cfg.mode = MixerMode::kActive;
    auto ma = core::build_transistor_mixer(cfg);
    const double ga = core::measure_conversion_gain_db(*ma, 5e6, 2e-3, topt);
    cfg.mode = MixerMode::kPassive;
    auto mp = core::build_transistor_mixer(cfg);
    const double gp = core::measure_conversion_gain_db(*mp, 5e6, 2e-3, topt);
    gains_a.push_back(ga);
    gains_p.push_back(gp);
    table.add_row({rf::ConsoleTable::num(a_lo, 2), rf::ConsoleTable::num(ga, 2),
                   rf::ConsoleTable::num(gp, 2)});
  }
  table.print(out);

  const double plateau_a = gains_a[3] - gains_a[2];
  out << "\nReading: the ACTIVE mode degrades gracefully at weak LO drive (the\n"
               "biased switching pair steers current even with partial commutation,\n"
               "plateauing within "
            << rf::ConsoleTable::num(std::abs(plateau_a), 1)
            << " dB between 0.45 and 0.60 V), while the PASSIVE mode has a hard\n"
               "threshold: its unbiased quad needs vgs > vth, so gain collapses for\n"
               "LO amplitudes below ~0.5 V. The paper's 0.6 V LO (half the 1.2 V\n"
               "supply) is exactly the minimum that serves both modes — an implicit\n"
               "design constraint this sweep makes visible.\n";
  return cli.finish();
}
