// Wide-band hazard extension: harmonic mixing response.
//
// A square-wave-commutated mixer also converts inputs near the LO
// harmonics (3 f_lo, 5 f_lo, ...) with gains falling as 1/m — a real
// problem for the paper's 0.5-7 GHz wide-band front end, where a blocker
// at 3 x 2.4 GHz = 7.2 GHz lands on the same IF. The conversion-matrix
// engine measures these responses directly.
#include <iostream>

#include "core/lptv_model.hpp"
#include "lptv/lptv.hpp"
#include "mathx/units.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_harmonic_mixing");
  std::ostream& out = cli.out();
  out << "=== Harmonic mixing: conversion gain from sideband m*f_lo + f_if ===\n\n";

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    const auto model = core::build_lptv_mixer(cfg);
    lptv::ConversionAnalysis an(model->circuit, {cfg.f_lo_hz, 8});

    out << "--- " << frontend::mode_name(mode) << " mode (f_lo = 2.4 GHz) ---\n";
    rf::ConsoleTable table({"input at", "sideband m", "gain (dB)", "rel. fundamental (dB)"});
    const double g1 = std::abs(an.conversion_transimpedance(
        5e6, 0, model->in, 1, model->out_p, model->out_m, 0));
    for (const int m : {1, 2, 3, 4, 5}) {
      const double g = std::abs(an.conversion_transimpedance(
          5e6, 0, model->in, m, model->out_p, model->out_m, 0));
      const double f_in = m * cfg.f_lo_hz + 5e6;
      table.add_row({rf::ConsoleTable::num(f_in / 1e9, 3) + " GHz", std::to_string(m),
                     rf::ConsoleTable::num(mathx::db_from_voltage_ratio(g), 1),
                     rf::ConsoleTable::num(mathx::db_from_voltage_ratio(g / g1), 1)});
    }
    table.print(out);
    out << "\n";
  }

  out << "Reading: odd harmonics convert at roughly -1/m (minus the input\n"
               "network's roll-off at m*f_lo); even harmonics are suppressed by the\n"
               "double-balanced topology. A 7.205 GHz blocker still reaches the IF\n"
               "~10-15 dB below the wanted channel — the harmonic-rejection cost of a\n"
               "square-wave-switched wide-band receiver, which the paper's front end\n"
               "would address with pre-filtering.\n";
  return cli.finish();
}
