// FIG10: Two-tone linearity (paper Fig. 10a/10b), LO = 2.4 GHz.
//
// Reproduces the fundamental and IM3 power series and the intercept-point
// construction with two engines:
//  * behavioral (calibrated): reproduces the paper's IIP3 anchors exactly
//    (+6.57 dBm passive, -11.9 dBm active);
//  * transistor-level transient + FFT: independent physics check of the
//    ordering (passive must beat active).
#include <iostream>
#include <string>

#include "core/behavioral.hpp"
#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "rf/twotone.hpp"

using namespace rfmix;
using core::BehavioralMixer;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_fig10_iip3");
  std::ostream& out = cli.out();
  out << "=== FIG10: two-tone IIP3, LO = 2.4 GHz, tones at LO+5/LO+6 MHz ===\n\n";

  for (const MixerMode mode : {MixerMode::kPassive, MixerMode::kActive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    const BehavioralMixer beh(cfg);
    const char* figure = mode == MixerMode::kPassive ? "Fig. 10(a) passive"
                                                     : "Fig. 10(b) active";
    out << "--- " << figure << " ---\n";

    // Behavioral series (the paper's plotted lines).
    rf::ConsoleTable table({"Pin/tone (dBm)", "fund beh (dBm)", "IM3 beh (dBm)",
                            "fund xtor (dBm)", "IM3 xtor (dBm)"});
    std::vector<double> pins{-50, -45, -40, -35, -30};
    std::vector<rf::ToneLevels> beh_sweep, xtor_sweep;

    core::TransientMeasureOptions topt;
    topt.grid_hz = 1e6;
    topt.grid_periods = 1;
    topt.settle_periods = 0.4;
    topt.samples_per_lo = 16;

    for (const double pin : pins) {
      beh_sweep.push_back(beh.two_tone(pin));
      auto mixer = core::build_transistor_mixer(cfg);
      xtor_sweep.push_back(core::measure_two_tone_point(*mixer, pin, 5e6, 6e6, topt));
      table.add_row({rf::ConsoleTable::num(pin, 0),
                     rf::ConsoleTable::num(beh_sweep.back().fund_dbm, 1),
                     rf::ConsoleTable::num(beh_sweep.back().im3_dbm, 1),
                     rf::ConsoleTable::num(xtor_sweep.back().fund_dbm, 1),
                     rf::ConsoleTable::num(xtor_sweep.back().im3_dbm, 1)});
    }
    table.print(out);

    const rf::InterceptResult rb = rf::extract_intercepts(beh_sweep);
    const rf::InterceptResult rx = rf::extract_intercepts(xtor_sweep);
    const double paper = mode == MixerMode::kPassive ? 6.57 : -11.9;
    const std::string tag = mode == MixerMode::kPassive ? "passive" : "active";
    cli.add_metric("iip3_beh_" + tag + "_dbm", rb.iip3_dbm);
    cli.add_metric("iip3_xtor_" + tag + "_dbm", rx.iip3_dbm);
    cli.add_metric("gain_xtor_" + tag + "_db", rx.gain_db);
    out << "  IIP3 behavioral:       " << rf::ConsoleTable::num(rb.iip3_dbm, 2)
              << " dBm (paper " << paper << ")\n";
    out << "  IIP3 transistor-level: " << rf::ConsoleTable::num(rx.iip3_dbm, 2)
              << " dBm (gain " << rf::ConsoleTable::num(rx.gain_db, 1) << " dB)\n\n";
  }

  out << "Shape check: passive-mode IIP3 exceeds active-mode IIP3 in both engines\n"
               "(paper separation: 18.5 dB; transistor-level engine shows the same\n"
               "ordering with a smaller separation, see EXPERIMENTS.md).\n";
  return cli.finish();
}
