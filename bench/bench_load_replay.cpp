// CLUSTER: rfmix-router under load, with and without chaos.
//
// Spins a real Supervisor (rfmixd worker processes) fronted by an
// in-process RouterLoop, then drives it with a fleet of round-trip
// clients sending a mixed op / ac / mixer_metric workload (distinct keys
// plus deliberate repeats, so the router's cache tier sees traffic too).
// Two measured passes: a calm one, and one with a chaos thread SIGKILLing
// random workers mid-flight. Every response of both passes must be
// "ok":true — the replay path turns worker murder into tail latency, not
// errors — and the report shows exactly what that tail costs: req/s and
// p50/p99/p999 side by side, plus the router's replay/restart counters.
#include <chrono>
#include <string>
#include <vector>

#include "obs/cli.hpp"
#include "rf/table.hpp"

#ifndef _WIN32

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <random>
#include <thread>

#include "svc/cache.hpp"
#include "svc/router.hpp"
#include "svc/supervisor.hpp"

using namespace rfmix;

#ifndef RFMIXD_BIN
#error "RFMIXD_BIN must point at the rfmixd binary"
#endif

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                   t0)
      .count();
}

/// One request line of the mixed workload. `tag` keys the physics so
/// distinct tags are distinct cache keys; every 4th request reuses a tag
/// it has seen before, so repeats flow through the router cache tier.
std::string make_request(int tag, int seq) {
  const int kind = tag % 3;
  const std::string id = "\"q" + std::to_string(seq) + "\"";
  if (kind == 0) {
    return "{\"v\":2,\"id\":" + id +
           ",\"kind\":\"op\",\"params\":{\"netlist\":\"V1 in 0 DC 1\\nR1 in out " +
           std::to_string(1000 + tag) + "\\nR2 out 0 1000\\n.end\"}}";
  }
  if (kind == 1) {
    return "{\"v\":2,\"id\":" + id +
           ",\"kind\":\"ac\",\"params\":{\"netlist\":\"V1 in 0 DC 0 AC 1\\nR1 in out " +
           std::to_string(1000 + tag) +
           "\\nC1 out 0 1n\\n.end\",\"ac\":{\"f_start_hz\":1e3,\"f_stop_hz\":1e8,"
           "\"points\":64,\"probe\":\"out\"}}}";
  }
  return "{\"v\":2,\"id\":" + id +
         ",\"kind\":\"mixer_metric\",\"params\":{\"metric\":\"gain_db\","
         "\"config\":{\"f_lo_hz\":" +
         std::to_string(1.0e9 + 1.0e6 * tag) + "}}}";
}

/// Connect, run `reqs` strictly request/response, record each round-trip
/// in `lat_us`. Returns the number of "ok":true responses.
int drive_conn(const std::string& path, const std::vector<std::string>& reqs,
               std::vector<double>& lat_us) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return 0;
  }
  int ok = 0;
  std::string buf;
  for (const std::string& req : reqs) {
    const auto t0 = std::chrono::steady_clock::now();
    const std::string line = req + "\n";
    std::size_t off = 0;
    while (off < line.size()) {
      const ssize_t n =
          ::send(fd, line.data() + off, line.size() - off, MSG_NOSIGNAL);
      if (n <= 0) {
        ::close(fd);
        return ok;
      }
      off += static_cast<std::size_t>(n);
    }
    std::size_t nl;
    while ((nl = buf.find('\n')) == std::string::npos) {
      pollfd p{fd, POLLIN, 0};
      if (::poll(&p, 1, 120000) <= 0) {
        ::close(fd);
        return ok;
      }
      char chunk[65536];
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n <= 0) {
        ::close(fd);
        return ok;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
    }
    lat_us.push_back(
        std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                  t0)
            .count());
    if (buf.find("\"ok\":true") < nl) ++ok;
    buf.erase(0, nl + 1);
  }
  ::close(fd);
  return ok;
}

double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = q * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_load_replay");
  std::ostream& out = cli.out();
  if (!cli.csv())
    out << "=== CLUSTER: rfmix-router load + worker-murder replay ===\n\n";

  constexpr int kWorkers = 3;
  constexpr int kThreads = 16;
  constexpr int kConnsPerThread = 16;  // 256 client connections per pass
  constexpr int kReqsPerConn = 8;      // 2048 round-trips per pass
  constexpr int kTotal = kThreads * kConnsPerThread * kReqsPerConn;

  const std::string base =
      "/tmp/rfmix-bench-replay-" + std::to_string(::getpid());
  const std::string sock = base + ".sock";
  const std::string wdir = base + ".workers";
  ::unlink(sock.c_str());
  ::mkdir(wdir.c_str(), 0700);

  svc::Supervisor::Options sopts;
  sopts.worker_bin = RFMIXD_BIN;
  sopts.socket_dir = wdir;
  sopts.workers = kWorkers;
  sopts.backoff_initial_ms = 25.0;
  sopts.fast_failure_ms = 0.0;  // murdered workers are not a crash loop
  svc::Supervisor sup(sopts);
  std::string err;
  if (!sup.start(&err)) {
    out << "supervisor start failed: " << err << "\n";
    return 1;
  }

  svc::ResultCache cache(4096);
  svc::RouterLoop::Options ropts;
  ropts.max_replays = 64;  // whole-fleet blips must not fail requests
  svc::RouterLoop router(sup, cache, ropts);
  if (!router.listen_unix(sock, &err)) {
    out << "listen failed: " << err << "\n";
    return 1;
  }
  std::thread router_thread([&] { router.run(); });

  // Per-connection request scripts. Three of four tags are globally
  // unique; every 4th reuses the connection's first tag (a warm repeat).
  const auto scripts = [&](int pass) {
    std::vector<std::vector<std::string>> all;
    int seq = pass * kTotal;
    for (int t = 0; t < kThreads; ++t) {
      for (int c = 0; c < kConnsPerThread; ++c) {
        std::vector<std::string> reqs;
        const int first = seq;
        for (int r = 0; r < kReqsPerConn; ++r, ++seq) {
          const int tag = (r % 4 == 3) ? first : seq;
          reqs.push_back(make_request(tag, seq));
        }
        all.push_back(std::move(reqs));
      }
    }
    return all;
  };

  const auto run_pass = [&](const std::vector<std::vector<std::string>>& all,
                            std::vector<double>& lat_us) {
    std::vector<std::thread> threads;
    std::vector<std::vector<double>> lats(kThreads);
    std::vector<int> oks(kThreads, 0);
    const auto t0 = std::chrono::steady_clock::now();
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int c = 0; c < kConnsPerThread; ++c)
          oks[t] += drive_conn(sock, all[static_cast<std::size_t>(
                                        t * kConnsPerThread + c)],
                               lats[static_cast<std::size_t>(t)]);
      });
    }
    for (auto& t : threads) t.join();
    int ok = 0;
    for (const int n : oks) ok += n;
    for (const auto& l : lats) lat_us.insert(lat_us.end(), l.begin(), l.end());
    return std::pair<double, int>(ms_since(t0), ok);
  };

  // Pass 1: calm. Pass 2: a chaos thread SIGKILLs a random worker every
  // 40-120 ms while the same-sized workload runs.
  std::vector<double> calm_us, chaos_us;
  const auto [calm_ms, calm_ok] = run_pass(scripts(0), calm_us);

  std::atomic<bool> chaos_on{true};
  std::atomic<int> kills{0};
  std::thread chaos([&] {
    std::mt19937 rng(1234);
    std::uniform_int_distribution<int> victim(0, kWorkers - 1);
    std::uniform_int_distribution<int> pause_ms(40, 120);
    while (chaos_on.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(pause_ms(rng)));
      const auto& w = sup.workers()[static_cast<std::size_t>(victim(rng))];
      if (w.state == svc::Supervisor::WorkerState::kRunning && w.pid > 0) {
        ::kill(w.pid, SIGKILL);
        kills.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  const auto [chaos_ms, chaos_ok] = run_pass(scripts(1), chaos_us);
  chaos_on.store(false, std::memory_order_relaxed);
  chaos.join();

  router.request_shutdown();
  router_thread.join();
  const svc::RouterLoop::Stats rs = router.stats();
  sup.shutdown(2000.0);
  ::unlink(sock.c_str());

  const double calm_rps = calm_ms > 0.0 ? 1000.0 * kTotal / calm_ms : 0.0;
  const double chaos_rps = chaos_ms > 0.0 ? 1000.0 * kTotal / chaos_ms : 0.0;

  rf::ConsoleTable table(
      {"pass", "ok", "req/s", "p50 (us)", "p99 (us)", "p999 (us)"});
  table.add_row({"calm", std::to_string(calm_ok) + "/" + std::to_string(kTotal),
                 rf::ConsoleTable::num(calm_rps, 0),
                 rf::ConsoleTable::num(percentile(calm_us, 0.50), 0),
                 rf::ConsoleTable::num(percentile(calm_us, 0.99), 0),
                 rf::ConsoleTable::num(percentile(calm_us, 0.999), 0)});
  table.add_row({"chaos", std::to_string(chaos_ok) + "/" + std::to_string(kTotal),
                 rf::ConsoleTable::num(chaos_rps, 0),
                 rf::ConsoleTable::num(percentile(chaos_us, 0.50), 0),
                 rf::ConsoleTable::num(percentile(chaos_us, 0.99), 0),
                 rf::ConsoleTable::num(percentile(chaos_us, 0.999), 0)});
  if (cli.csv()) {
    table.print_csv(out);
  } else {
    table.print(out);
    out << "\nchaos pass: " << kills.load() << " worker kill(s), "
        << rs.replays << " ticket replay(s), " << rs.unavailable
        << " unavailable, " << rs.cache_hits << " router-tier hit(s)\n";
  }

  cli.set_config("workers", kWorkers);
  cli.set_config("clients", kThreads * kConnsPerThread);
  cli.set_config("requests_per_pass", kTotal);
  cli.add_metric("calm_req_per_s", calm_rps);
  cli.add_metric("calm_p99_us", percentile(calm_us, 0.99));
  cli.add_metric("chaos_req_per_s", chaos_rps);
  cli.add_metric("chaos_p50_us", percentile(chaos_us, 0.50));
  cli.add_metric("chaos_p99_us", percentile(chaos_us, 0.99));
  cli.add_metric("chaos_p999_us", percentile(chaos_us, 0.999));
  cli.add_metric("worker_kills", kills.load());
  cli.add_metric("replays", static_cast<double>(rs.replays));
  cli.add_metric("unavailable", static_cast<double>(rs.unavailable));

  // The contract under chaos: murder becomes latency, never errors.
  if (calm_ok != kTotal || chaos_ok != kTotal || rs.unavailable != 0) {
    out << "replay contract violated: calm " << calm_ok << "/" << kTotal
        << ", chaos " << chaos_ok << "/" << kTotal << ", unavailable "
        << rs.unavailable << "\n";
    cli.finish();
    return 1;
  }
  return cli.finish();
}

#else  // _WIN32

int main(int argc, char** argv) {
  rfmix::obs::BenchCli cli(argc, argv, "bench_load_replay");
  cli.out() << "bench_load_replay requires Unix sockets\n";
  return cli.finish();
}

#endif  // _WIN32
