// TXT1: IIP2 > 65 dBm in both modes (paper section IV).
//
// Behavioral engine reproduces the claim by construction; the transistor
// engine measures the IM2 product (f2 - f1 = 1 MHz) of the fully balanced
// circuit, which is limited only by numerical residue and the systematic
// balance of the topology.
#include <iostream>
#include <string>

#include "core/behavioral.hpp"
#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "rf/twotone.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_iip2");
  std::ostream& out = cli.out();
  out << "=== TXT1: IIP2 ('IIP2 > 65 dBm for both cases', section IV) ===\n\n";

  rf::ConsoleTable table({"Mode", "IIP2 behavioral (dBm)", "IIP2 transistor (dBm)",
                          "paper"});

  core::TransientMeasureOptions topt;
  topt.grid_hz = 1e6;
  topt.grid_periods = 2;  // longer record: the IM2 bin sits at 1 MHz
  topt.settle_periods = 0.5;
  topt.samples_per_lo = 16;

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    const core::BehavioralMixer beh(cfg);

    std::vector<double> pins{-45, -40, -35, -30};
    std::vector<rf::ToneLevels> beh_sweep, xtor_sweep;
    for (const double pin : pins) {
      beh_sweep.push_back(beh.two_tone(pin));
      auto mixer = core::build_transistor_mixer(cfg);
      xtor_sweep.push_back(core::measure_two_tone_point(*mixer, pin, 5e6, 6e6, topt));
    }
    const rf::InterceptResult rb = rf::extract_intercepts(beh_sweep);
    const rf::InterceptResult rx = rf::extract_intercepts(xtor_sweep);
    const std::string tag = frontend::mode_name(mode);
    cli.add_metric("iip2_beh_" + tag + "_dbm", rb.iip2_dbm);
    if (rx.has_iip2) cli.add_metric("iip2_xtor_" + tag + "_dbm", rx.iip2_dbm);
    table.add_row({frontend::mode_name(mode), rf::ConsoleTable::num(rb.iip2_dbm, 1),
                   rx.has_iip2 ? rf::ConsoleTable::num(rx.iip2_dbm, 1) : "n/a",
                   "> 65"});
  }
  table.print(out);
  out << "\nNote: the transistor-level IM2 of a perfectly matched (typical-corner)\n"
               "differential circuit reflects systematic balance only; silicon IIP2 is\n"
               "mismatch-limited, which simulation without Monte-Carlo mismatch cannot\n"
               "capture (same limitation as the paper's simulated > 65 dBm claim).\n";
  return cli.finish();
}
