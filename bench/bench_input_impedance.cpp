// TXT3: "it is required to design high input impedance gm stage to avoid
// loading effect" (paper section II).
//
// Measures the transistor-level mixer's differential RF input impedance
// across the band with the AC engine: |Zin| must stay far above the
// 50-ohm system impedance so the gm stage doesn't load the balun/LNA.
#include <cmath>
#include <iostream>

#include "core/circuits.hpp"
#include "mathx/units.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "spice/ac.hpp"
#include "spice/op.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_input_impedance");
  std::ostream& out = cli.out();
  out << "=== TXT3: RF input impedance of the gm stage across the band ===\n\n";

  rf::ConsoleTable table({"f (GHz)", "|Zin| active (ohm)", "|Zin| passive (ohm)"});
  bool high_z = true;
  std::vector<double> freqs{0.5e9, 1e9, 2.45e9, 5e9, 7e9};
  std::vector<std::vector<double>> zin(2);

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    auto mixer = core::build_transistor_mixer(cfg);
    // Differential AC drive at the RF gates; input current from the source
    // branch currents.
    mixer->vrf_p->set_ac(0.5);
    mixer->vrf_m->set_ac(-0.5);
    const spice::Solution op = spice::dc_operating_point(mixer->circuit);
    const spice::AcResult res = spice::ac_sweep(mixer->circuit, op, freqs);
    for (std::size_t i = 0; i < freqs.size(); ++i) {
      const int ub = res.layout.branch_unknown(mixer->vrf_p->branch_base());
      const std::complex<double> ip = res.solutions[i][static_cast<std::size_t>(ub)];
      // Differential impedance: v_diff / i = 1 V / |i|.
      const double z = 1.0 / std::abs(ip);
      zin[mode == MixerMode::kActive ? 0 : 1].push_back(z);
      if (z < 500.0) high_z = false;
    }
  }
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    table.add_row({rf::ConsoleTable::num(freqs[i] / 1e9, 2),
                   rf::ConsoleTable::num(zin[0][i], 0),
                   rf::ConsoleTable::num(zin[1][i], 0)});
  }
  table.print(out);

  // S11 the gate would present to a 100-ohm differential system, from the
  // measured |Zin| (capacitive, so |S11| = |(Z - Z0)/(Z + Z0)| with Z ~ -jX).
  out << "\n|S11| of the differential RF port vs 100 ohm (active mode):\n";
  rf::ConsoleTable s11({"f (GHz)", "|S11| (dB)"});
  for (std::size_t i = 0; i < freqs.size(); ++i) {
    const std::complex<double> z(0.0, -zin[0][i]);  // capacitive reactance
    const double mag = std::abs((z - 100.0) / (z + 100.0));
    s11.add_row({rf::ConsoleTable::num(freqs[i] / 1e9, 2),
                 rf::ConsoleTable::num(mathx::db_from_voltage_ratio(mag), 2)});
  }
  s11.print(out);
  out << "  (near 0 dB: the capacitive gate reflects almost everything — by\n"
                 "   design, since the paper's LNA provides the 50-ohm match.)\n";

  out << "\nCheck: |Zin| >> 50 ohm (>10x) across 0.5-7 GHz in both modes: "
            << (high_z ? "yes" : "NO")
            << "\nThe input is the gm-stage gate (capacitive), so the preceding\n"
               "balun/LNA sees a negligible load — the paper's section II argument.\n";
  return cli.finish();
}
