// GEN-SCALE: elaboration scaling of generated receiver arrays.
//
// Renders rx_array decks at geometrically increasing element counts (the
// largest past 100k devices), and times each stage separately: template
// rendering, parser elaboration (.subckt compile-once/replay-per-instance),
// and the DC operating-point solve. Reports the log-log scaling exponent
// of elaboration time vs device count — the structural-sharing contract is
// that it stays near 1 (linear), not 2 (the naive re-tokenize-per-instance
// blowup).
//
// --smoke runs only the largest size against a wall-clock budget
// (--budget-ms, default 60000): the CI Release lane's 100k-device
// regression tripwire.
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "gen/templates.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "spice/circuit.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"

using namespace rfmix;

namespace {

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct ScalePoint {
  int elements = 0;
  std::size_t devices = 0;
  double render_ms = 0.0;
  double elaborate_ms = 0.0;
  double solve_ms = 0.0;
};

ScalePoint run_size(int elements, bool solve) {
  gen::GenSpec spec;
  spec.template_id = "rx_array";
  spec.elements = elements;
  spec.paths = 4;
  spec.sections = 6;
  spec.zbb_c = 2e-12;  // caps on every ladder section: 58 devices/element
  spec.mismatch = 0.05;
  spec.seed = 1;

  ScalePoint pt;
  pt.elements = elements;
  pt.devices = gen::device_count(spec);

  const auto t_render = std::chrono::steady_clock::now();
  const std::string deck = gen::render_netlist(spec);
  pt.render_ms = ms_since(t_render);

  const auto t_parse = std::chrono::steady_clock::now();
  spice::Circuit ckt = spice::parse_netlist(deck);
  pt.elaborate_ms = ms_since(t_parse);
  if (ckt.devices().size() != pt.devices) {
    throw std::runtime_error("device count mismatch at " + std::to_string(elements));
  }

  if (solve) {
    const auto t_solve = std::chrono::steady_clock::now();
    const spice::Solution op = spice::dc_operating_point(ckt);
    pt.solve_ms = ms_since(t_solve);
    (void)op;
  }
  return pt;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_gen_scale");
  std::ostream& out = cli.out();

  bool smoke = false;
  double budget_ms = 60000.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--budget-ms") == 0 && i + 1 < argc)
      budget_ms = std::stod(argv[i + 1]);
  }

  if (!cli.csv())
    out << "=== GEN-SCALE: rx_array elaboration scaling (58 devices/element) ===\n\n";

  // 2048 elements * 58 = 118,784 devices: the 100k+ acceptance point.
  const std::vector<int> sizes =
      smoke ? std::vector<int>{2048} : std::vector<int>{64, 256, 1024, 2048};

  std::vector<ScalePoint> points;
  const auto t_total = std::chrono::steady_clock::now();
  for (const int elements : sizes)
    points.push_back(run_size(elements, /*solve=*/true));
  const double total_ms = ms_since(t_total);

  rf::ConsoleTable table(
      {"elements", "devices", "render_ms", "elaborate_ms", "solve_ms", "us/device"});
  for (const ScalePoint& pt : points) {
    table.add_row({rf::ConsoleTable::num(double(pt.elements), 0),
               rf::ConsoleTable::num(double(pt.devices), 0),
               rf::ConsoleTable::num(pt.render_ms, 1),
               rf::ConsoleTable::num(pt.elaborate_ms, 1),
               rf::ConsoleTable::num(pt.solve_ms, 1),
               rf::ConsoleTable::num(1e3 * pt.elaborate_ms / double(pt.devices), 3)});
  }

  // Log-log slope of elaboration time vs device count across the sweep:
  // 1.0 = linear, 2.0 = quadratic blowup.
  double exponent = 1.0;
  if (points.size() >= 2) {
    const ScalePoint& a = points.front();
    const ScalePoint& b = points.back();
    exponent = std::log(b.elaborate_ms / a.elaborate_ms) /
               std::log(double(b.devices) / double(a.devices));
  }

  const ScalePoint& big = points.back();
  if (!cli.csv()) {
    table.print(out);
    if (!smoke)
      out << "\nelaboration scaling exponent (log-log slope): "
          << rf::ConsoleTable::num(exponent, 2) << " (1 = linear)\n";
    out << "largest: " << big.devices << " devices, elaborate "
        << rf::ConsoleTable::num(big.elaborate_ms, 1) << " ms, solve "
        << rf::ConsoleTable::num(big.solve_ms, 1) << " ms\n";
  }

  cli.set_config("smoke", smoke ? 1.0 : 0.0);
  cli.set_config("budget_ms", budget_ms);
  cli.add_metric("devices_max", double(big.devices));
  cli.add_metric("render_ms", big.render_ms);
  cli.add_metric("elaborate_ms", big.elaborate_ms);
  cli.add_metric("solve_ms", big.solve_ms);
  cli.add_metric("total_ms", total_ms);
  cli.add_metric("scaling_exponent", exponent);

  // Failures the driver can see: a quadratic elaborator or a blown budget.
  if (big.devices < 100000) {
    out << "GEN-SCALE FAILED: largest size only " << big.devices << " devices\n";
    cli.finish();
    return 1;
  }
  if (total_ms > budget_ms) {
    out << "GEN-SCALE FAILED: " << total_ms << " ms exceeds budget " << budget_ms
        << " ms\n";
    cli.finish();
    return 1;
  }
  if (!smoke && exponent > 1.35) {
    out << "GEN-SCALE FAILED: elaboration scaling exponent " << exponent
        << " (expected near-linear)\n";
    cli.finish();
    return 1;
  }
  return cli.finish();
}
