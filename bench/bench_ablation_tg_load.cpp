// ABL1: Transmission-gate load ablation (paper section II-B: "Gain of
// active mixer can be tuned by changing the resistance of transmission
// gate").
//
// Sweeps Rtol and measures the active-mode conversion gain with the LPTV
// engine, comparing against the ideal (2/pi)*gm*Rtol slope. The Cc value is
// co-scaled so the IF pole stays at 10 MHz (isolating the gain effect).
#include <cmath>
#include <iostream>

#include "core/lptv_model.hpp"
#include "mathx/units.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_ablation_tg_load");
  std::ostream& out = cli.out();
  out << "=== ABL1: active-mode gain vs transmission-gate load resistance ===\n\n";

  MixerConfig base;
  base.mode = MixerMode::kActive;
  const double pole_hz = 1.0 / (mathx::kTwoPi * base.tg_resistance * base.cc_load);

  rf::ConsoleTable table({"Rtol (kohm)", "gain LPTV (dB)", "ideal 2/pi*gm*R (dB)",
                          "loss vs ideal (dB)"});
  double prev_gain = 0.0;
  bool monotone = true;
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    MixerConfig cfg = base;
    cfg.tg_resistance = base.tg_resistance * scale;
    cfg.cc_load = 1.0 / (mathx::kTwoPi * cfg.tg_resistance * pole_hz);
    const double gain = core::lptv_conversion_gain_db(cfg, 5e6);
    const double ideal = mathx::db_from_voltage_ratio(
        2.0 / mathx::kPi * cfg.tca_gm * cfg.tg_resistance);
    table.add_row({rf::ConsoleTable::num(cfg.tg_resistance / 1e3, 2),
                   rf::ConsoleTable::num(gain, 2), rf::ConsoleTable::num(ideal, 2),
                   rf::ConsoleTable::num(ideal - gain, 2)});
    if (scale > 0.25 && gain <= prev_gain) monotone = false;
    prev_gain = gain;
  }
  table.print(out);

  out << "\nChecks: gain rises monotonically with Rtol ("
            << (monotone ? "yes" : "NO")
            << "); each doubling adds ~6 dB; the fixed offset from the ideal\n"
               "slope is the input-network loss (band-shaping + commutation).\n";
  return cli.finish();
}
