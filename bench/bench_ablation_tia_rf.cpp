// ABL2: TIA feedback-resistor ablation (paper eq. (3): VCG = (2/pi)*gm*ZF,
// and section II-C: "The gain of the TIA can be tuned by changing the value
// of RF and it provides another degree of freedom").
//
// Sweeps RF and measures the passive-mode conversion gain with the LPTV
// engine against the analytic formula. CF is co-scaled to keep ZF's pole
// (the IF bandwidth) fixed, exactly the trade the paper describes.
#include <cmath>
#include <iostream>

#include "core/lptv_model.hpp"
#include "mathx/units.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_ablation_tia_rf");
  std::ostream& out = cli.out();
  out << "=== ABL2: passive-mode gain vs TIA feedback resistor RF ===\n\n";

  MixerConfig base;
  base.mode = MixerMode::kPassive;
  const double pole_hz = 1.0 / (mathx::kTwoPi * base.tia_rf * base.tia_cf);

  rf::ConsoleTable table({"RF (kohm)", "gain LPTV (dB)", "VCG=2/pi*gm*ZF (dB)",
                          "loss vs formula (dB)"});
  double max_loss = 0.0, min_loss = 1e9;
  for (const double scale : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    MixerConfig cfg = base;
    cfg.tia_rf = base.tia_rf * scale;
    cfg.tia_cf = 1.0 / (mathx::kTwoPi * cfg.tia_rf * pole_hz);
    const double gain = core::lptv_conversion_gain_db(cfg, 1e6);
    const double formula =
        mathx::db_from_voltage_ratio(2.0 / mathx::kPi * cfg.tca_gm * cfg.tia_rf);
    const double loss = formula - gain;
    max_loss = std::max(max_loss, loss);
    min_loss = std::min(min_loss, loss);
    table.add_row({rf::ConsoleTable::num(cfg.tia_rf / 1e3, 2),
                   rf::ConsoleTable::num(gain, 2), rf::ConsoleTable::num(formula, 2),
                   rf::ConsoleTable::num(loss, 2)});
  }
  table.print(out);

  out << "\nChecks: measured gain tracks the paper's eq. (3) with a roughly constant\n"
               "implementation loss (spread "
            << rf::ConsoleTable::num(max_loss - min_loss, 2)
            << " dB across a 16x RF range) from input-network shaping and\n"
               "current division in the commutated path.\n";
  return cli.finish();
}
