// Noise budget: per-source breakdown of the output noise at 5 MHz IF from
// two engines — the LPTV element model (hand-built, calibrated) and the
// transistor-level PNOISE (extracted, un-calibrated). The designer's view
// of WHY the two modes have the NF they have.
#include <algorithm>
#include <iostream>

#include "core/lptv_model.hpp"
#include "core/pac_transistor.hpp"
#include "lptv/lptv.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_noise_budget");
  std::ostream& out = cli.out();
  out << "=== Noise budget @ 5 MHz IF (sorted, > 1% contributions) ===\n\n";

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    out << "--- " << frontend::mode_name(mode) << " mode, LPTV element model ---\n";
    const auto model = core::build_lptv_mixer(cfg);
    lptv::ConversionAnalysis an(model->circuit, {cfg.f_lo_hz, 8});
    const auto noise = an.output_noise(5e6, model->out_p, model->out_m);
    auto contributions = noise.contributions;
    std::sort(contributions.begin(), contributions.end(),
              [](const auto& a, const auto& b) {
                return a.output_psd_v2_hz > b.output_psd_v2_hz;
              });
    rf::ConsoleTable table({"source", "share (%)"});
    for (const auto& c : contributions) {
      const double pct = 100.0 * c.output_psd_v2_hz / noise.total_output_psd_v2_hz;
      if (pct < 1.0) continue;
      table.add_row({c.label, rf::ConsoleTable::num(pct, 1)});
    }
    table.print(out);
    const auto nf = core::lptv_nf_dsb(cfg, 5e6);
    out << "  total NF: " << rf::ConsoleTable::num(nf.nf_dsb_db, 2) << " dB\n\n";
  }

  out << "Reading: the active mode is dominated by the commutated Gm devices\n"
               "(classic Gilbert behaviour); the passive mode adds TIA op-amp and\n"
               "switch-quad terms on a weaker signal path — the 2.6 dB NF penalty the\n"
               "paper reports for its high-linearity mode.\n";
  return cli.finish();
}
