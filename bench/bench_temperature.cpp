// Robustness extension: conversion gain and DSB NF across the industrial
// temperature range, both modes, LPTV engine.
//
// Device noise scales with 4kT and the achievable gm falls with mobility
// (kp ~ T^-1.5); NF stays referenced to the IEEE 290 K source.
#include <iostream>

#include "core/lptv_model.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_temperature");
  std::ostream& out = cli.out();
  out << "=== Temperature sweep: gain and DSB NF @ 5 MHz IF (LPTV engine) ===\n\n";

  rf::ConsoleTable table({"T (C)", "act gain (dB)", "act NF (dB)", "pas gain (dB)",
                          "pas NF (dB)"});
  struct Point { double t_c, ga, nfa, gp, nfp; };
  std::vector<Point> pts;
  for (const double t_c : {-40.0, 0.0, 27.0, 85.0, 125.0}) {
    MixerConfig a;
    a.mode = MixerMode::kActive;
    a.temperature_k = 273.15 + t_c;
    MixerConfig p = a;
    p.mode = MixerMode::kPassive;
    Point pt{};
    pt.t_c = t_c;
    pt.ga = core::lptv_conversion_gain_db(a, 5e6);
    pt.nfa = core::lptv_nf_dsb(a, 5e6).nf_dsb_db;
    pt.gp = core::lptv_conversion_gain_db(p, 5e6);
    pt.nfp = core::lptv_nf_dsb(p, 5e6).nf_dsb_db;
    pts.push_back(pt);
    table.add_row({rf::ConsoleTable::num(t_c, 0), rf::ConsoleTable::num(pt.ga, 2),
                   rf::ConsoleTable::num(pt.nfa, 2), rf::ConsoleTable::num(pt.gp, 2),
                   rf::ConsoleTable::num(pt.nfp, 2)});
  }
  table.print(out);

  out << "\nChecks: gain falls and NF rises monotonically with temperature in both\n"
               "modes (gm ~ T^-0.75, noise ~ kT); the active-vs-passive orderings of\n"
               "Table I hold across the full -40..125 C industrial range:\n";
  bool order_ok = true, mono_ok = true;
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (!(pts[i].ga > pts[i].gp && pts[i].nfa < pts[i].nfp)) order_ok = false;
    if (i > 0 && !(pts[i].ga < pts[i - 1].ga && pts[i].nfa > pts[i - 1].nfa))
      mono_ok = false;
  }
  out << "  orderings hold at every temperature: " << (order_ok ? "yes" : "NO")
            << "\n  monotone trend with temperature:    " << (mono_ok ? "yes" : "NO")
            << "\n";
  return cli.finish();
}
