// Engine micro-benchmarks (google-benchmark): the computational kernels
// behind every reproduction bench — dense/sparse LU, FFT, Newton DC solves,
// transient stepping and LPTV conversion-matrix assembly/solve.
#include <benchmark/benchmark.h>

#include "core/circuits.hpp"
#include "core/lptv_model.hpp"
#include "mathx/fft.hpp"
#include "mathx/lu.hpp"
#include "mathx/rng.hpp"
#include "mathx/sparse.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"

namespace {

using namespace rfmix;

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(1);
  mathx::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += 6.0;
  }
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mathx::lu_solve(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(2);
  mathx::TripletMatrix<double> t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 6.0 + rng.uniform());
    for (int k = 0; k < 4; ++k) t.add(i, rng.uniform_index(n), rng.normal() * 0.3);
  }
  const mathx::CscMatrix<double> a(t);
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    mathx::SparseLu<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(128)->Arg(512)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(3);
  std::vector<mathx::Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto y = x;
    mathx::fft(y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384)->Arg(100000);  // last one hits Bluestein

void BM_MixerOperatingPoint(benchmark::State& state) {
  for (auto _ : state) {
    core::MixerConfig cfg;
    cfg.mode = state.range(0) == 0 ? core::MixerMode::kActive : core::MixerMode::kPassive;
    auto mixer = core::build_transistor_mixer(cfg);
    benchmark::DoNotOptimize(spice::dc_operating_point(mixer->circuit));
  }
}
BENCHMARK(BM_MixerOperatingPoint)->Arg(0)->Arg(1);

void BM_MixerTransientSteps(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kActive;
  auto mixer = core::build_transistor_mixer(cfg);
  const double dt = 1.0 / (cfg.f_lo_hz * 16);
  long steps = 0;
  for (auto _ : state) {
    auto result = spice::transient(mixer->circuit, 200 * dt, dt,
                                   {{mixer->if_p, mixer->if_m, "if"}});
    steps += 200;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_MixerTransientSteps);

void BM_LptvConversionGain(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_conversion_gain_db(cfg, 5e6));
  }
}
BENCHMARK(BM_LptvConversionGain);

void BM_LptvNoise(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_nf_dsb(cfg, 5e6));
  }
}
BENCHMARK(BM_LptvNoise);

}  // namespace

BENCHMARK_MAIN();
