// Engine micro-benchmarks (google-benchmark): the computational kernels
// behind every reproduction bench — dense/sparse LU, FFT, Newton DC solves,
// transient stepping and LPTV conversion-matrix assembly/solve.
#include <benchmark/benchmark.h>

#include "core/circuits.hpp"
#include "core/lptv_model.hpp"
#include "mathx/fft.hpp"
#include "mathx/lu.hpp"
#include "mathx/rng.hpp"
#include "mathx/sparse.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/devices_passive.hpp"
#include "spice/devices_sources.hpp"
#include "spice/montecarlo.hpp"
#include "spice/mosfet.hpp"
#include "spice/op.hpp"
#include "spice/pss.hpp"
#include "spice/solver.hpp"
#include "spice/tech65.hpp"
#include "spice/tran.hpp"

namespace {

using namespace rfmix;

mathx::SolverMode mode_arg(const benchmark::State& state) {
  return state.range(0) == 0 ? mathx::SolverMode::kClassic : mathx::SolverMode::kReuse;
}

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(1);
  mathx::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += 6.0;
  }
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mathx::lu_solve(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(2);
  mathx::TripletMatrix<double> t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 6.0 + rng.uniform());
    for (int k = 0; k < 4; ++k) t.add(i, rng.uniform_index(n), rng.normal() * 0.3);
  }
  const mathx::CscMatrix<double> a(t);
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    mathx::SparseLu<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(128)->Arg(512)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(3);
  std::vector<mathx::Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto y = x;
    mathx::fft(y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384)->Arg(100000);  // last one hits Bluestein

void BM_MixerOperatingPoint(benchmark::State& state) {
  for (auto _ : state) {
    core::MixerConfig cfg;
    cfg.mode = state.range(0) == 0 ? core::MixerMode::kActive : core::MixerMode::kPassive;
    auto mixer = core::build_transistor_mixer(cfg);
    benchmark::DoNotOptimize(spice::dc_operating_point(mixer->circuit));
  }
}
BENCHMARK(BM_MixerOperatingPoint)->Arg(0)->Arg(1);

// Arg 0 = classic (analyze every factorization), 1 = reuse (analyze once,
// refactor per Newton iteration). The ratio of these two is the headline
// number for the solver fast path: a Newton-heavy transient does hundreds
// of factorizations on one unchanging sparsity pattern.
void BM_MixerTransientSteps(benchmark::State& state) {
  mathx::ScopedSolverMode scoped(mode_arg(state));
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kActive;
  auto mixer = core::build_transistor_mixer(cfg);
  const double dt = 1.0 / (cfg.f_lo_hz * 16);
  long steps = 0;
  for (auto _ : state) {
    auto result = spice::transient(mixer->circuit, 200 * dt, dt,
                                   {{mixer->if_p, mixer->if_m, "if"}});
    steps += 200;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_MixerTransientSteps)->Arg(0)->Arg(1);

void BM_MixerPssPeriods(benchmark::State& state) {
  mathx::ScopedSolverMode scoped(mode_arg(state));
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kActive;
  for (auto _ : state) {
    auto mixer = core::build_transistor_mixer(cfg);
    spice::PssOptions opts;
    opts.samples_per_period = 32;
    opts.max_periods = 4;
    opts.min_periods = 2;
    auto result = spice::periodic_steady_state(mixer->circuit, 1.0 / cfg.f_lo_hz, opts);
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_MixerPssPeriods)->Arg(0)->Arg(1);

// The raw kernel behind the engine ratio: numeric refactorization against a
// pinned symbolic vs a from-scratch analyzing factorization of the same
// matrix (pattern discovery + pivot search).
void BM_SparseLuRefactor(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(2);
  mathx::TripletMatrix<double> t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 6.0 + rng.uniform());
    for (int k = 0; k < 4; ++k) t.add(i, rng.uniform_index(n), rng.normal() * 0.3);
  }
  const mathx::CscMatrix<double> a(t);
  mathx::SparseLuSymbolic<double> sym;
  const mathx::SparseLu<double> analyzed(a, sym);
  mathx::SparseLu<double> lu;
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    const bool ok = lu.refactor_from(sym, a);
    benchmark::DoNotOptimize(ok);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuRefactor)->Arg(128)->Arg(512)->Arg(1024);

// Solver-mode scaling probe: an N-stage RC-coupled common-source ladder
// (2N+4 unknowns) under a sine drive. Unlike the mixer, whose Jacobian
// magnitudes barely reorder between steps, the swinging ladder makes
// partial pivoting drift often — this is the case the drift-repair path
// exists for (without it, reuse pays a wasted partial refactor plus a full
// re-analysis per drift and loses to classic at large N).
// Args: (stages, 0=classic/1=reuse).
void BM_NewtonLadderTransient(benchmark::State& state) {
  const int stages = static_cast<int>(state.range(0));
  mathx::ScopedSolverMode scoped(state.range(1) == 0 ? mathx::SolverMode::kClassic
                                                     : mathx::SolverMode::kReuse);
  for (auto _ : state) {
    spice::Circuit c;
    const auto vdd = c.node("vdd");
    const auto in = c.node("in");
    c.add<spice::VoltageSource>("Vdd", vdd, spice::kGround, spice::Waveform::dc(1.2));
    c.add<spice::VoltageSource>("Vin", in, spice::kGround,
                                spice::Waveform::sine(0.05, 1e9, 0.0));
    spice::NodeId prev = in;
    for (int i = 0; i < stages; ++i) {
      const auto g = c.node("g" + std::to_string(i));
      const auto d = c.node("d" + std::to_string(i));
      c.add<spice::Capacitor>("Cc" + std::to_string(i), prev, g, 1e-12);
      c.add<spice::Resistor>("Rb1" + std::to_string(i), vdd, g, 200e3);
      c.add<spice::Resistor>("Rb2" + std::to_string(i), g, spice::kGround, 120e3);
      c.add<spice::Mosfet>("M" + std::to_string(i), d, g, spice::kGround,
                           spice::kGround, spice::tech65::nmos(4e-6));
      c.add<spice::Resistor>("Rl" + std::to_string(i), vdd, d, 2e3);
      c.add<spice::Capacitor>("Cl" + std::to_string(i), d, spice::kGround, 20e-15);
      prev = d;
    }
    const double dt = 1.0 / (1e9 * 16);
    auto result = spice::transient(c, 100 * dt, dt, {{prev, spice::kGround, "out"}});
    benchmark::DoNotOptimize(result);
  }
}
BENCHMARK(BM_NewtonLadderTransient)
    ->Args({8, 0})->Args({8, 1})->Args({64, 0})->Args({64, 1});

void BM_LptvConversionGain(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_conversion_gain_db(cfg, 5e6));
  }
}
BENCHMARK(BM_LptvConversionGain);

void BM_LptvNoise(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_nf_dsb(cfg, 5e6));
  }
}
BENCHMARK(BM_LptvNoise);

// ---- runtime pool kernels ------------------------------------------------

// Pure scheduling overhead: a parallel_for over trivial bodies, at the
// pool's thread count (arg) — the cost floor every parallel analysis pays.
void BM_ParallelForOverhead(benchmark::State& state) {
  runtime::ScopedPool scoped(static_cast<int>(state.range(0)));
  std::vector<double> out(4096);
  for (auto _ : state) {
    runtime::parallel_for(0, out.size(),
                          [&](std::size_t i) { out[i] = static_cast<double>(i) * 0.5; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 4096);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4);

// Monte-Carlo mismatch trials through the deterministic driver: the kernel
// behind bench_iip2_mismatch, with a cheap (operating-point) trial body.
void BM_MonteCarloMismatchTrials(benchmark::State& state) {
  runtime::ScopedPool scoped(static_cast<int>(state.range(0)));
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    const auto vdd_currents = spice::tech65::monte_carlo_trials(
        8, 42u, [&](int, mathx::Rng& rng) {
          core::DeviceVariation var;
          var.mismatch_rng = &rng;
          auto mixer = core::build_transistor_mixer(cfg, var);
          const spice::Solution op = spice::dc_operating_point(mixer->circuit);
          return mixer->vdd->current(op);
        });
    benchmark::DoNotOptimize(vdd_currents);
  }
}
BENCHMARK(BM_MonteCarloMismatchTrials)->Arg(1)->Arg(4);

// Fig. 9 batch kernel: one NF point per pool lane (each point = one LPTV
// factorization pair since ConversionAnalysis::factor).
void BM_LptvNfSweepBatch(benchmark::State& state) {
  runtime::ScopedPool scoped(static_cast<int>(state.range(0)));
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  const std::vector<double> ifs = {100e3, 1e6, 5e6, 10e6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_nf_sweep(cfg, ifs));
  }
}
BENCHMARK(BM_LptvNfSweepBatch)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
