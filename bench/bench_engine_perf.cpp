// Engine micro-benchmarks (google-benchmark): the computational kernels
// behind every reproduction bench — dense/sparse LU, FFT, Newton DC solves,
// transient stepping and LPTV conversion-matrix assembly/solve.
#include <benchmark/benchmark.h>

#include "core/circuits.hpp"
#include "core/lptv_model.hpp"
#include "mathx/fft.hpp"
#include "mathx/lu.hpp"
#include "mathx/rng.hpp"
#include "mathx/sparse.hpp"
#include "runtime/parallel_for.hpp"
#include "runtime/thread_pool.hpp"
#include "spice/montecarlo.hpp"
#include "spice/op.hpp"
#include "spice/tran.hpp"

namespace {

using namespace rfmix;

void BM_DenseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(1);
  mathx::MatrixD a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
    a(i, i) += 6.0;
  }
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mathx::lu_solve(a, b));
  }
}
BENCHMARK(BM_DenseLuSolve)->Arg(16)->Arg(64)->Arg(128);

void BM_SparseLuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(2);
  mathx::TripletMatrix<double> t(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    t.add(i, i, 6.0 + rng.uniform());
    for (int k = 0; k < 4; ++k) t.add(i, rng.uniform_index(n), rng.normal() * 0.3);
  }
  const mathx::CscMatrix<double> a(t);
  mathx::VectorD b(n, 1.0);
  for (auto _ : state) {
    mathx::SparseLu<double> lu(a);
    benchmark::DoNotOptimize(lu.solve(b));
  }
}
BENCHMARK(BM_SparseLuSolve)->Arg(128)->Arg(512)->Arg(1024);

void BM_Fft(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  mathx::Rng rng(3);
  std::vector<mathx::Complex> x(n);
  for (auto& v : x) v = {rng.normal(), rng.normal()};
  for (auto _ : state) {
    auto y = x;
    mathx::fft(y);
    benchmark::DoNotOptimize(y);
  }
}
BENCHMARK(BM_Fft)->Arg(1024)->Arg(16384)->Arg(100000);  // last one hits Bluestein

void BM_MixerOperatingPoint(benchmark::State& state) {
  for (auto _ : state) {
    core::MixerConfig cfg;
    cfg.mode = state.range(0) == 0 ? core::MixerMode::kActive : core::MixerMode::kPassive;
    auto mixer = core::build_transistor_mixer(cfg);
    benchmark::DoNotOptimize(spice::dc_operating_point(mixer->circuit));
  }
}
BENCHMARK(BM_MixerOperatingPoint)->Arg(0)->Arg(1);

void BM_MixerTransientSteps(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kActive;
  auto mixer = core::build_transistor_mixer(cfg);
  const double dt = 1.0 / (cfg.f_lo_hz * 16);
  long steps = 0;
  for (auto _ : state) {
    auto result = spice::transient(mixer->circuit, 200 * dt, dt,
                                   {{mixer->if_p, mixer->if_m, "if"}});
    steps += 200;
    benchmark::DoNotOptimize(result);
  }
  state.SetItemsProcessed(steps);
}
BENCHMARK(BM_MixerTransientSteps);

void BM_LptvConversionGain(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_conversion_gain_db(cfg, 5e6));
  }
}
BENCHMARK(BM_LptvConversionGain);

void BM_LptvNoise(benchmark::State& state) {
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_nf_dsb(cfg, 5e6));
  }
}
BENCHMARK(BM_LptvNoise);

// ---- runtime pool kernels ------------------------------------------------

// Pure scheduling overhead: a parallel_for over trivial bodies, at the
// pool's thread count (arg) — the cost floor every parallel analysis pays.
void BM_ParallelForOverhead(benchmark::State& state) {
  runtime::ScopedPool scoped(static_cast<int>(state.range(0)));
  std::vector<double> out(4096);
  for (auto _ : state) {
    runtime::parallel_for(0, out.size(),
                          [&](std::size_t i) { out[i] = static_cast<double>(i) * 0.5; });
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<long>(state.iterations()) * 4096);
}
BENCHMARK(BM_ParallelForOverhead)->Arg(1)->Arg(2)->Arg(4);

// Monte-Carlo mismatch trials through the deterministic driver: the kernel
// behind bench_iip2_mismatch, with a cheap (operating-point) trial body.
void BM_MonteCarloMismatchTrials(benchmark::State& state) {
  runtime::ScopedPool scoped(static_cast<int>(state.range(0)));
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  for (auto _ : state) {
    const auto vdd_currents = spice::tech65::monte_carlo_trials(
        8, 42u, [&](int, mathx::Rng& rng) {
          core::DeviceVariation var;
          var.mismatch_rng = &rng;
          auto mixer = core::build_transistor_mixer(cfg, var);
          const spice::Solution op = spice::dc_operating_point(mixer->circuit);
          return mixer->vdd->current(op);
        });
    benchmark::DoNotOptimize(vdd_currents);
  }
}
BENCHMARK(BM_MonteCarloMismatchTrials)->Arg(1)->Arg(4);

// Fig. 9 batch kernel: one NF point per pool lane (each point = one LPTV
// factorization pair since ConversionAnalysis::factor).
void BM_LptvNfSweepBatch(benchmark::State& state) {
  runtime::ScopedPool scoped(static_cast<int>(state.range(0)));
  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;
  const std::vector<double> ifs = {100e3, 1e6, 5e6, 10e6};
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::lptv_nf_sweep(cfg, ifs));
  }
}
BENCHMARK(BM_LptvNfSweepBatch)->Arg(1)->Arg(4);

}  // namespace

BENCHMARK_MAIN();
