// Extension: I/Q image rejection of the reconfigurable mixer (the
// quadrature demodulator the Fig. 2 front end needs — cf. reference [4],
// a quadrature demodulator, in Table I).
//
// Sweeps LO phase error and I/Q gain error and compares the LPTV-measured
// image-rejection ratio against the textbook bound.
#include <iostream>

#include "core/image_reject.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_image_rejection");
  std::ostream& out = cli.out();
  out << "=== Extension: I/Q image rejection vs quadrature error ===\n\n";

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    out << "--- " << frontend::mode_name(mode) << " mode ---\n";
    rf::ConsoleTable table({"phase err (deg)", "gain err (dB)", "IRR LPTV (dB)",
                            "IRR analytic (dB)", "wanted gain (dB)"});
    for (const auto& [ph, g] : std::vector<std::pair<double, double>>{
             {0.0, 0.0}, {0.5, 0.0}, {1.0, 0.0}, {3.0, 0.0}, {5.0, 0.0},
             {0.0, 0.1}, {0.0, 0.5}, {1.0, 0.1}, {3.0, 0.5}}) {
      const auto r = core::lptv_image_rejection(cfg, 5e6, ph, g);
      const double bound = core::analytic_irr_db(g, ph);
      table.add_row({rf::ConsoleTable::num(ph, 1), rf::ConsoleTable::num(g, 1),
                     rf::ConsoleTable::num(r.irr_db, 1),
                     rf::ConsoleTable::num(bound, 1),
                     rf::ConsoleTable::num(r.wanted_gain_db, 1)});
    }
    table.print(out);
    out << "\n";
  }

  out << "Reading: with matched paths the IRR is limited only by the engine's\n"
               "numerical floor; with realistic 1 degree / 0.1 dB quadrature error it\n"
               "lands near the ~40 dB textbook bound. Both modes of the reconfigurable\n"
               "mixer support I/Q operation because the LO phase enters only through\n"
               "the switching waveforms.\n";
  return cli.finish();
}
