// TAB1: the paper's Table I — "this work" (active + passive) against the
// eight published comparison designs, with this repo's measured values from
// all three engines alongside the paper's reported numbers.
#include <iostream>

#include "core/baselines.hpp"
#include "core/behavioral.hpp"
#include "core/circuits.hpp"
#include "core/lptv_model.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/table.hpp"
#include "rf/twotone.hpp"
#include "spice/op.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

namespace {

struct ThisWorkRow {
  double gain_lptv, nf_lptv, iip3_xtor, power_model, gain_xtor;
};

ThisWorkRow measure(MixerMode mode) {
  MixerConfig cfg;
  cfg.mode = mode;
  ThisWorkRow r{};
  r.gain_lptv = core::lptv_conversion_gain_db(cfg, 5e6);
  r.nf_lptv = core::lptv_nf_dsb(cfg, 5e6).nf_dsb_db;
  r.power_model = cfg.power_mw();

  core::TransientMeasureOptions topt;
  topt.grid_hz = 1e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;
  std::vector<rf::ToneLevels> sweep;
  for (const double pin : {-45.0, -40.0, -35.0, -30.0}) {
    auto mixer = core::build_transistor_mixer(cfg);
    sweep.push_back(core::measure_two_tone_point(*mixer, pin, 5e6, 6e6, topt));
  }
  const rf::InterceptResult ip = rf::extract_intercepts(sweep);
  r.iip3_xtor = ip.iip3_dbm;
  r.gain_xtor = ip.gain_db;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_table1_comparison");
  std::ostream& out = cli.out();
  out << "=== TAB1: simulation results and comparison (paper Table I) ===\n\n";

  const ThisWorkRow act = measure(MixerMode::kActive);
  const ThisWorkRow pas = measure(MixerMode::kPassive);

  out << "--- This work: paper-reported vs this repo's measurements ---\n";
  rf::ConsoleTable mine({"Parameter", "Active paper", "Active measured",
                         "Passive paper", "Passive measured"});
  mine.add_row({"Gain (dB), LPTV engine", "29.2", rf::ConsoleTable::num(act.gain_lptv, 1),
                "25.5", rf::ConsoleTable::num(pas.gain_lptv, 1)});
  mine.add_row({"Gain (dB), transistor", "29.2", rf::ConsoleTable::num(act.gain_xtor, 1),
                "25.5", rf::ConsoleTable::num(pas.gain_xtor, 1)});
  mine.add_row({"DSB NF (dB) @5MHz, LPTV", "7.7", rf::ConsoleTable::num(act.nf_lptv, 1),
                "10.2", rf::ConsoleTable::num(pas.nf_lptv, 1)});
  mine.add_row({"IIP3 (dBm), transistor", "-11.9", rf::ConsoleTable::num(act.iip3_xtor, 1),
                "6.57", rf::ConsoleTable::num(pas.iip3_xtor, 1)});
  mine.add_row({"Power (mW), model", "9.36", rf::ConsoleTable::num(act.power_model, 2),
                "9.24", rf::ConsoleTable::num(pas.power_model, 2)});
  mine.add_row({"Bandwidth (GHz)", "1 to 5.5", "see FIG8", "0.5 to 5.1", "see FIG8"});
  mine.add_row({"Technology / supply", "65nm / 1.2V", "modeled", "65nm / 1.2V", "modeled"});
  mine.print(out);

  out << "\n--- Published comparison designs (transcribed from Table I) ---\n";
  rf::ConsoleTable refs({"Ref", "Gain (dB)", "NF (dB)", "IIP3 (dBm)", "1dB-CP (dBm)",
                         "Power (mW)", "BW (GHz)", "Tech", "Supply (V)"});
  for (const auto& b : core::table1_baselines()) {
    refs.add_row({b.label, b.gain_db, b.nf_db, b.iip3_dbm, b.p1db_dbm, b.power_mw,
                  b.bandwidth_ghz, b.technology, b.supply_v});
  }
  refs.print(out);

  cli.add_metric("gain_active_lptv_db", act.gain_lptv);
  cli.add_metric("gain_passive_lptv_db", pas.gain_lptv);
  cli.add_metric("nf_active_lptv_db", act.nf_lptv);
  cli.add_metric("nf_passive_lptv_db", pas.nf_lptv);
  cli.add_metric("iip3_active_xtor_dbm", act.iip3_xtor);
  cli.add_metric("iip3_passive_xtor_dbm", pas.iip3_xtor);
  cli.add_metric("power_active_mw", act.power_model);
  cli.add_metric("power_passive_mw", pas.power_model);

  out << "\nOrdering checks (paper's comparative claims):\n";
  int beaten = 0;
  for (const auto& b : core::table1_baselines())
    if (act.gain_lptv > b.gain_mid_db) ++beaten;
  out << "  active-mode gain exceeds " << beaten
            << "/8 published designs (paper: all but [4])\n";
  out << "  active gain > passive gain: "
            << (act.gain_lptv > pas.gain_lptv ? "yes" : "NO") << "\n";
  out << "  passive IIP3 > active IIP3: "
            << (pas.iip3_xtor > act.iip3_xtor ? "yes" : "NO") << "\n";
  out << "  active NF < passive NF: " << (act.nf_lptv < pas.nf_lptv ? "yes" : "NO")
            << "\n";
  return cli.finish();
}
