// Table I row: 1 dB compression point (-24.5 dBm active, -14 dBm passive,
// both at 5 MHz IF).
//
// The behavioral engine reproduces the anchors through a genuine gain-
// compression sweep (cubic + output-swing clamp, the paper's "output
// compression point of the OPAMP limits the input referred linearity");
// the transistor engine sweeps the real circuit.
#include <iostream>
#include <string>

#include "core/behavioral.hpp"
#include "core/circuits.hpp"
#include "core/measurements.hpp"
#include "obs/cli.hpp"
#include "rf/compression.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main(int argc, char** argv) {
  obs::BenchCli cli(argc, argv, "bench_p1db");
  std::ostream& out = cli.out();
  out << "=== Table I row: input 1 dB compression point @ 5 MHz IF ===\n\n";

  rf::ConsoleTable table(
      {"Mode", "P1dB behavioral (dBm)", "P1dB transistor (dBm)", "paper (dBm)"});

  core::TransientMeasureOptions topt;
  topt.grid_hz = 5e6;
  topt.grid_periods = 1;
  topt.settle_periods = 0.4;
  topt.samples_per_lo = 16;

  for (const MixerMode mode : {MixerMode::kActive, MixerMode::kPassive}) {
    MixerConfig cfg;
    cfg.mode = mode;
    const core::BehavioralMixer beh(cfg);

    std::vector<double> pins;
    for (double p = -45.0; p <= 5.0; p += 1.0) pins.push_back(p);
    const rf::CompressionResult rb = rf::find_p1db(
        pins, [&](double pin) { return beh.single_tone_pout_dbm(pin); });

    std::vector<double> pins_x;
    for (double p = -40.0; p <= 4.0; p += 2.0) pins_x.push_back(p);
    const rf::CompressionResult rx = rf::find_p1db(pins_x, [&](double pin) {
      auto mixer = core::build_transistor_mixer(cfg);
      return core::measure_single_tone_pout_dbm(*mixer, pin, 5e6, topt);
    });

    const std::string tag = frontend::mode_name(mode);
    if (rb.found) cli.add_metric("p1db_beh_" + tag + "_dbm", rb.p1db_in_dbm);
    if (rx.found) cli.add_metric("p1db_xtor_" + tag + "_dbm", rx.p1db_in_dbm);
    table.add_row({frontend::mode_name(mode),
                   rb.found ? rf::ConsoleTable::num(rb.p1db_in_dbm, 1) : "n/a",
                   rx.found ? rf::ConsoleTable::num(rx.p1db_in_dbm, 1) : "n/a",
                   mode == MixerMode::kActive ? "-24.5" : "-14.0"});
  }
  table.print(out);
  out << "\nShape check: the passive mode compresses later than the active mode in\n"
               "both engines (the TIA virtual ground absorbs the current swing, while the\n"
               "active mode's TG load swing saturates first).\n";
  return cli.finish();
}
