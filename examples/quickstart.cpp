// Quickstart: build the reconfigurable mixer in both modes, query the
// calibrated behavioral model and the LPTV conversion-matrix engine, and
// let the planner pick a mode for a Zigbee receiver.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <iostream>

#include "core/behavioral.hpp"
#include "core/lptv_model.hpp"
#include "frontend/planner.hpp"
#include "frontend/standards.hpp"
#include "rf/table.hpp"

using namespace rfmix;

int main() {
  std::cout << "rfmix quickstart: 1.2 V wide-band reconfigurable mixer (65 nm)\n\n";

  // 1) Configure the mixer. MixerConfig holds every element value the three
  //    analysis engines share; defaults reproduce the paper's design point.
  core::MixerConfig cfg;
  cfg.f_lo_hz = 2.4e9;

  // 2) Ask the calibrated behavioral model for the headline numbers.
  rf::ConsoleTable summary({"Metric", "Active", "Passive"});
  cfg.mode = core::MixerMode::kActive;
  const core::BehavioralMixer active(cfg);
  cfg.mode = core::MixerMode::kPassive;
  const core::BehavioralMixer passive(cfg);

  summary.add_row({"Conversion gain @2.45 GHz (dB)",
                   rf::ConsoleTable::num(active.conversion_gain_db(2.45e9), 1),
                   rf::ConsoleTable::num(passive.conversion_gain_db(2.45e9), 1)});
  summary.add_row({"DSB NF @5 MHz IF (dB)",
                   rf::ConsoleTable::num(active.nf_dsb_db(5e6), 1),
                   rf::ConsoleTable::num(passive.nf_dsb_db(5e6), 1)});
  summary.add_row({"IIP3 (dBm)", rf::ConsoleTable::num(active.spec().iip3_dbm, 1),
                   rf::ConsoleTable::num(passive.spec().iip3_dbm, 2)});
  summary.add_row({"Power (mW)", rf::ConsoleTable::num(active.power_mw(), 2),
                   rf::ConsoleTable::num(passive.power_mw(), 2)});
  summary.print(std::cout);

  // 3) Cross-check one number with the physics-based LPTV engine (the
  //    conversion-matrix method behind commercial PAC analyses).
  cfg.mode = core::MixerMode::kActive;
  std::cout << "\nLPTV engine cross-check (active): gain = "
            << rf::ConsoleTable::num(core::lptv_conversion_gain_db(cfg), 2)
            << " dB, NF = "
            << rf::ConsoleTable::num(core::lptv_nf_dsb(cfg, 5e6).nf_dsb_db, 2)
            << " dB\n";

  // 4) Let the planner choose the mode for a standard (the paper's Fig. 1
  //    trade-off, automated).
  const auto catalog = frontend::standard_catalog();
  const auto& zigbee = frontend::find_standard(catalog, "zigbee-2450");
  const frontend::ModeDecision d = frontend::choose_mixer_mode(
      zigbee, frontend::FrontEndSpec{}, active.perf(), passive.perf());
  std::cout << "\nPlanner decision for " << zigbee.name << ": "
            << frontend::mode_name(d.mode) << " mode\n  " << d.rationale << "\n";
  return 0;
}
