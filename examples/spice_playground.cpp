// The circuit simulator as a standalone tool: parse a SPICE-dialect
// netlist, then run all four analyses (OP, AC, transient, noise) on it.
// Demonstrates the substrate API independent of the mixer work.
#include <iostream>

#include "mathx/units.hpp"
#include "spice/ac.hpp"
#include "spice/noise.hpp"
#include "spice/op.hpp"
#include "spice/parser.hpp"
#include "spice/tran.hpp"

using namespace rfmix;
using namespace rfmix::spice;

int main() {
  // A one-transistor common-source amplifier with an RC-filtered input,
  // written exactly as a .cir deck.
  const std::string netlist = R"(
* common-source amplifier, 65nm NMOS
VDD  vdd 0   1.2
VIN  in  0   DC 0.5 SIN(0.5 0.01 10meg) AC 1
RIN  in  g   100
CIN  g   0   50f
M1   d   g   0 0 NMOS W=20u L=65n
RL   vdd d   800
CL   d   0   200f
.end
)";
  Circuit ckt = parse_netlist(netlist);

  // 1) Operating point.
  const Solution op = dc_operating_point(ckt);
  const NodeId d = ckt.find_node("d");
  const NodeId g = ckt.find_node("g");
  std::cout << "Operating point: V(g) = " << op.v(g) << " V, V(d) = " << op.v(d)
            << " V\n";

  // 2) AC sweep: gain and bandwidth.
  const AcResult ac = ac_sweep(ckt, op, log_space(1e5, 1e11, 25));
  double peak = 0.0;
  for (std::size_t i = 0; i < ac.freqs_hz.size(); ++i)
    peak = std::max(peak, std::abs(ac.v(i, d)));
  std::cout << "AC: low-frequency gain = "
            << mathx::db_from_voltage_ratio(std::abs(ac.v(0, d))) << " dB";
  for (std::size_t i = 0; i < ac.freqs_hz.size(); ++i) {
    if (std::abs(ac.v(i, d)) < peak / std::sqrt(2.0)) {
      std::cout << ", -3 dB bandwidth ~ " << ac.freqs_hz[i] / 1e9 << " GHz";
      break;
    }
  }
  std::cout << "\n";

  // 3) Transient: amplify the 10 MHz sine.
  const TranResult tr = transient(ckt, 300e-9, 0.2e-9, {{d, kGround, "vd"}});
  double vmin = 1e9, vmax = -1e9;
  const std::size_t n = tr.time_s.size();
  for (std::size_t i = n / 2; i < n; ++i) {
    vmin = std::min(vmin, tr.waveform(0)[i]);
    vmax = std::max(vmax, tr.waveform(0)[i]);
  }
  std::cout << "Transient: steady-state output swing = " << (vmax - vmin) * 1e3
            << " mVpp for a 20 mVpp input\n";

  // 4) Noise at the drain, with a per-source breakdown.
  const NoiseResult nr = noise_analysis(ckt, op, d, kGround, {1e3, 10e6});
  std::cout << "Noise at 10 MHz: output density = " << nr.output_density(1) * 1e9
            << " nV/sqrt(Hz)\n";
  std::cout << "  breakdown:\n";
  for (const auto& c : nr.points[1].contributions) {
    std::cout << "    " << c.label << ": "
              << 100.0 * c.output_psd_v2_hz / nr.points[1].total_output_psd_v2_hz
              << "%\n";
  }
  std::cout << "At 1 kHz, flicker dominates: "
            << (nr.contribution_psd(0, "flicker") > nr.contribution_psd(0, "thermal")
                    ? "yes"
                    : "no")
            << "\n";
  return 0;
}
