// Gain reconfiguration — the paper's second-order claim: beyond the
// active/passive mode switch, the gain is tunable in both modes ("The Gm of
// MOS Mn1 and Mn2 can be changed by changing the value of bias voltage";
// "Gain of active mixer can be tuned by changing the resistance of
// transmission gate"; "The gain of the TIA can be tuned by changing RF").
//
// This example sweeps all three knobs through the LPTV engine and prints
// the resulting gain maps a radio's AGC would use.
#include <iostream>

#include "core/lptv_model.hpp"
#include "mathx/units.hpp"
#include "rf/table.hpp"

using namespace rfmix;
using core::MixerConfig;
using core::MixerMode;

int main() {
  std::cout << "Gain reconfiguration knobs (LPTV engine, gain at 2.405 GHz RF)\n\n";

  // Knob 1: Gm-stage bias (both modes respond).
  std::cout << "1) Transconductance (bias) tuning:\n";
  rf::ConsoleTable t1({"gm (mS)", "active gain (dB)", "passive gain (dB)"});
  for (const double gm : {10e-3, 15e-3, 20e-3, 25e-3}) {
    MixerConfig a;
    a.mode = MixerMode::kActive;
    a.tca_gm = gm;
    MixerConfig p = a;
    p.mode = MixerMode::kPassive;
    t1.add_row({rf::ConsoleTable::num(gm * 1e3, 0),
                rf::ConsoleTable::num(core::lptv_conversion_gain_db(a), 1),
                rf::ConsoleTable::num(core::lptv_conversion_gain_db(p), 1)});
  }
  t1.print(std::cout);

  // Knob 2: transmission-gate load (active mode only).
  std::cout << "\n2) Transmission-gate load tuning (active mode):\n";
  rf::ConsoleTable t2({"Rtol (kohm)", "gain (dB)"});
  for (const double scale : {0.5, 1.0, 2.0}) {
    MixerConfig a;
    a.mode = MixerMode::kActive;
    a.tg_resistance *= scale;
    a.cc_load /= scale;  // hold the IF pole
    t2.add_row({rf::ConsoleTable::num(a.tg_resistance / 1e3, 1),
                rf::ConsoleTable::num(core::lptv_conversion_gain_db(a), 1)});
  }
  t2.print(std::cout);

  // Knob 3: TIA feedback resistor (passive mode only).
  std::cout << "\n3) TIA RF tuning (passive mode):\n";
  rf::ConsoleTable t3({"RF (kohm)", "gain (dB)"});
  for (const double scale : {0.5, 1.0, 2.0}) {
    MixerConfig p;
    p.mode = MixerMode::kPassive;
    p.tia_rf *= scale;
    p.tia_cf /= scale;
    t3.add_row({rf::ConsoleTable::num(p.tia_rf / 1e3, 1),
                rf::ConsoleTable::num(core::lptv_conversion_gain_db(p), 1)});
  }
  t3.print(std::cout);

  std::cout << "\nTogether the three knobs span roughly 25 dB of gain range on one\n"
               "circuit — the reconfigurability budget the paper targets for\n"
               "multi-standard receivers.\n";
  return 0;
}
