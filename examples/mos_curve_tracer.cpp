// Curve tracer: the DC-sweep analysis used as an instrument. Traces the
// tech65 NMOS output characteristics (ID vs VDS at stepped VGS) and the
// transfer characteristic (ID vs VGS), printing gnuplot-ready CSV — the
// data behind every gm/Ron figure the mixer design relies on.
#include <iostream>

#include "rf/table.hpp"
#include "spice/circuit.hpp"
#include "spice/dcsweep.hpp"
#include "spice/devices_passive.hpp"
#include "spice/mosfet.hpp"
#include "spice/tech65.hpp"

using namespace rfmix;
using namespace rfmix::spice;

int main() {
  std::cout << "tech65 NMOS curve tracer (W = 10 um, L = 65 nm)\n\n";

  // Output characteristics: ID vs VDS for VGS in 0.4..1.2 V.
  std::cout << "Output characteristics ID(VDS) [mA]:\n";
  rf::ConsoleTable out_table(
      {"VDS (V)", "VGS=0.4", "VGS=0.6", "VGS=0.8", "VGS=1.0", "VGS=1.2"});
  const std::vector<double> vgs_steps{0.4, 0.6, 0.8, 1.0, 1.2};
  std::vector<std::vector<double>> id_curves;
  for (const double vgs : vgs_steps) {
    Circuit ckt;
    const NodeId d = ckt.node("d");
    const NodeId g = ckt.node("g");
    auto& vd = ckt.add<VoltageSource>("vd", d, kGround, Waveform::dc(0.0));
    ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(vgs));
    ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
    const DcSweepResult sweep = dc_sweep(ckt, vd, 0.0, 1.2, 13);
    std::vector<double> ids;
    for (const auto& sol : sweep.solutions) ids.push_back(-vd.current(sol) * 1e3);
    id_curves.push_back(ids);
  }
  for (int i = 0; i < 13; ++i) {
    const double vds = 1.2 * i / 12.0;
    out_table.add_row({rf::ConsoleTable::num(vds, 1),
                       rf::ConsoleTable::num(id_curves[0][static_cast<std::size_t>(i)], 3),
                       rf::ConsoleTable::num(id_curves[1][static_cast<std::size_t>(i)], 3),
                       rf::ConsoleTable::num(id_curves[2][static_cast<std::size_t>(i)], 3),
                       rf::ConsoleTable::num(id_curves[3][static_cast<std::size_t>(i)], 3),
                       rf::ConsoleTable::num(id_curves[4][static_cast<std::size_t>(i)], 3)});
  }
  out_table.print(std::cout);

  // Transfer characteristic and gm extraction at VDS = 1.0 V.
  std::cout << "\nTransfer characteristic at VDS = 1.0 V:\n";
  Circuit ckt;
  const NodeId d = ckt.node("d");
  const NodeId g = ckt.node("g");
  ckt.add<VoltageSource>("vd", d, kGround, Waveform::dc(1.0));
  auto& vg = ckt.add<VoltageSource>("vg", g, kGround, Waveform::dc(0.0));
  Mosfet& m = ckt.add<Mosfet>("m1", d, g, kGround, kGround, tech65::nmos(10e-6));
  const DcSweepResult sweep = dc_sweep(ckt, vg, 0.2, 1.2, 11);
  rf::ConsoleTable tr_table({"VGS (V)", "ID (mA)", "gm (mS)", "gm/ID (1/V)"});
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    const MosOperatingPoint op = m.evaluate(sweep.solutions[i]);
    tr_table.add_row({rf::ConsoleTable::num(sweep.values[i], 2),
                      rf::ConsoleTable::num(op.ids * 1e3, 3),
                      rf::ConsoleTable::num(op.gm * 1e3, 2),
                      rf::ConsoleTable::num(op.ids > 0 ? op.gm / op.ids : 0.0, 1)});
  }
  tr_table.print(std::cout);
  std::cout << "\nNote the gm/ID decay from ~20+/V (weak inversion) toward a few /V\n"
               "(strong inversion) — the efficiency curve that sets the TCA's bias\n"
               "point in the mixer design.\n";
  return 0;
}
