// Multi-standard IoT receiver planning — the paper's motivating scenario:
// one reconfigurable radio covering Zigbee, BLE, Wi-Fi, UWB and cognitive
// bands by switching the mixer between active and passive mode per
// standard, instead of stacking five dedicated radios.
//
// For each catalog standard this example runs the mode planner, prints the
// chosen mode with the full front-end budget (Friis NF / IIP3 cascade), and
// compares achieved sensitivity against the standard's requirement.
#include <iostream>

#include "core/behavioral.hpp"
#include "frontend/cascade.hpp"
#include "frontend/planner.hpp"
#include "frontend/standards.hpp"
#include "rf/table.hpp"

using namespace rfmix;

int main() {
  std::cout << "Multi-standard receiver planning with the reconfigurable mixer\n\n";

  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kActive;
  const core::BehavioralMixer active(cfg);
  cfg.mode = core::MixerMode::kPassive;
  const core::BehavioralMixer passive(cfg);

  rf::ConsoleTable table({"Standard", "Mode", "Chain NF (dB)", "Chain IIP3 (dBm)",
                          "Sensitivity (dBm)", "Required (dBm)", "Meets?"});

  int total = 0, feasible = 0;
  for (const auto& std_spec : frontend::standard_catalog()) {
    const frontend::ModeDecision d = frontend::choose_mixer_mode(
        std_spec, frontend::FrontEndSpec{}, active.perf(), passive.perf());
    const double sens = frontend::sensitivity_dbm(d.chain.nf_db, std_spec.channel_bw_hz,
                                                  std_spec.snr_required_db);
    const bool ok = d.feasible && sens <= std_spec.sensitivity_dbm;
    ++total;
    if (ok) ++feasible;
    table.add_row({std_spec.name, frontend::mode_name(d.mode),
                   rf::ConsoleTable::num(d.chain.nf_db, 1),
                   rf::ConsoleTable::num(d.chain.iip3_dbm, 1),
                   rf::ConsoleTable::num(sens, 1),
                   rf::ConsoleTable::num(std_spec.sensitivity_dbm, 0), ok ? "yes" : "no"});
  }
  table.print(std::cout);

  std::cout << "\n" << feasible << "/" << total
            << " standards covered by a single reconfigurable front end.\n";
  std::cout << "The linearity-hungry standards select the passive mode; the\n"
               "sensitivity-hungry ones select the active mode — Fig. 1's trade-off.\n";
  return 0;
}
