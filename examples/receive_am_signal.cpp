// End-to-end reception demo: an amplitude-modulated 2.405 GHz carrier is
// applied to the transistor-level reconfigurable mixer, downconverted to a
// 5 MHz IF, and the modulation is recovered from the IF spectrum — the
// whole Fig. 2 story (minus the antenna) running through the repo's own
// circuit simulator.
#include <iostream>

#include "core/circuits.hpp"
#include "mathx/units.hpp"
#include "rf/spectrum.hpp"
#include "rf/table.hpp"
#include "spice/tran.hpp"

using namespace rfmix;

int main() {
  std::cout << "AM reception demo: carrier 2.405 GHz, modulation 1 MHz, m = 0.5\n\n";

  core::MixerConfig cfg;
  cfg.mode = core::MixerMode::kPassive;  // the linear mode for faithful envelopes

  auto mixer = core::build_transistor_mixer(cfg);

  // AM stimulus: carrier A*(1 + m*cos(2*pi*fm*t))*cos(2*pi*fc*t)
  //            = A*cos(wc t) + (A*m/2)*[cos((wc+wm)t) + cos((wc-wm)t)].
  const double a_carrier = 3e-3;
  const double m_index = 0.5;
  const double f_c = cfg.f_lo_hz + 5e6;
  const double f_m = 1e6;
  core::RfStimulus stim;
  spice::MultiToneWave p, n;
  p.offset = 0.55;
  n.offset = 0.55;
  for (const auto& [amp, f] : std::vector<std::pair<double, double>>{
           {a_carrier, f_c}, {a_carrier * m_index / 2.0, f_c + f_m},
           {a_carrier * m_index / 2.0, f_c - f_m}}) {
    p.tones.push_back({amp / 2.0, f, 0.0});
    n.tones.push_back({-amp / 2.0, f, 0.0});
  }
  mixer->vrf_p->set_waveform(spice::Waveform(p));
  mixer->vrf_m->set_waveform(spice::Waveform(n));

  // Simulate 2 us (two full modulation periods) after 0.4 us settling.
  const double dt = 1.0 / (cfg.f_lo_hz * 16);
  const spice::TranResult res = spice::transient(
      mixer->circuit, 2.4e-6, dt, {{mixer->if_p, mixer->if_m, "if"}});
  rf::SampledWaveform w;
  w.sample_rate_hz = 1.0 / dt;
  w.samples = res.waveform(0);
  const std::size_t keep = static_cast<std::size_t>(std::llround(2e-6 / dt));
  w.samples.erase(w.samples.begin(), w.samples.end() - static_cast<std::ptrdiff_t>(keep));

  // Recover the modulation from the IF spectrum: carrier at 5 MHz,
  // sidebands at 4 and 6 MHz; m = (A4 + A6) / A5.
  const double a5 = rf::tone_amplitude(w, 5e6);
  const double a4 = rf::tone_amplitude(w, 4e6);
  const double a6 = rf::tone_amplitude(w, 6e6);
  const double m_recovered = (a4 + a6) / a5;

  rf::ConsoleTable table({"IF tone", "amplitude (mV)"});
  table.add_row({"4 MHz (lower sideband)", rf::ConsoleTable::num(a4 * 1e3, 3)});
  table.add_row({"5 MHz (carrier)", rf::ConsoleTable::num(a5 * 1e3, 3)});
  table.add_row({"6 MHz (upper sideband)", rf::ConsoleTable::num(a6 * 1e3, 3)});
  table.print(std::cout);

  std::cout << "\nConversion gain on the carrier: "
            << rf::ConsoleTable::num(
                   mathx::db_from_voltage_ratio(a5 / a_carrier), 1)
            << " dB\n";
  std::cout << "Transmitted modulation index: " << m_index
            << ", recovered: " << rf::ConsoleTable::num(m_recovered, 3) << "\n";
  std::cout << "In-band SFDR of the IF record: "
            << rf::ConsoleTable::num(rf::sfdr_db(w, 5e6, 2.5e6), 1) << " dB\n";
  std::cout << "\nThe sidebands ride through the commutation with the carrier and the\n"
               "envelope survives — the linear passive mode is doing its job.\n";
  return 0;
}
